(* Assembler tests: expression parsing, directives, pseudo expansion,
   error reporting, and the disassembler roundtrip. *)

open S4e_isa
module Asm = S4e_asm.Assembler
module Program = S4e_asm.Program
module Disasm = S4e_asm.Disasm

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:300 gen f)

let assemble src =
  match Asm.assemble src with
  | Ok p -> p
  | Error e -> Alcotest.failf "assembly failed: %a" Asm.pp_error e

let expect_error ?contains src =
  match Asm.assemble src with
  | Ok _ -> Alcotest.fail "expected an assembly error"
  | Error e -> (
      match contains with
      | None -> ()
      | Some needle ->
          let msg = Format.asprintf "%a" Asm.pp_error e in
          let found =
            let n = String.length needle and m = String.length msg in
            let rec go i =
              i + n <= m && (String.sub msg i n = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "error %S mentions %S" msg needle)
            true found)

let first_instrs p n =
  let mem = S4e_mem.Sparse_mem.create () in
  Program.load p mem;
  List.init n (fun i ->
      match Decode.decode (S4e_mem.Sparse_mem.read32 mem (p.Program.entry + (4 * i))) with
      | Some ins -> ins
      | None -> Alcotest.failf "instruction %d undecodable" i)

let test_simple_program () =
  let p = assemble "_start:\n  addi a0, zero, 5\n  add a1, a0, a0\n" in
  match first_instrs p 2 with
  | [ Instr.Op_imm (ADDI, 10, 0, 5); Instr.Op (ADD, 11, 10, 10) ] -> ()
  | _ -> Alcotest.fail "unexpected encoding"

let test_expressions () =
  let p =
    assemble
      {|
_start:
  li a0, 0x100 + 8
  li a1, 0x100 - 8
  li a2, -4
  li a3, 'A'
  li a4, (0x100 + 8) - 8
|}
  in
  match first_instrs p 5 with
  | [ Instr.Op_imm (ADDI, 10, 0, 0x108);
      Instr.Op_imm (ADDI, 11, 0, 0xF8);
      Instr.Op_imm (ADDI, 12, 0, -4);
      Instr.Op_imm (ADDI, 13, 0, 65);
      Instr.Op_imm (ADDI, 14, 0, 0x100) ] -> ()
  | l ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map Instr.to_string l))

let test_hi_lo () =
  let p =
    assemble {|
_start:
  lui a0, %hi(0x80001234)
  addi a0, a0, %lo(0x80001234)
|}
  in
  (* executing the pair must reconstruct the constant *)
  match first_instrs p 2 with
  | [ Instr.Lui (10, hi); Instr.Op_imm (ADDI, 10, 10, lo) ] ->
      Alcotest.(check int) "hi/lo reconstruct" 0x80001234
        (S4e_bits.Bits.add (hi lsl 12) (S4e_bits.Bits.of_signed lo))
  | _ -> Alcotest.fail "unexpected shape"

let test_pseudo_expansions () =
  let p =
    assemble
      {|
_start:
  nop
  mv   a0, a1
  not  a2, a3
  neg  a4, a5
  seqz t0, t1
  snez t2, t3
  j    next
next:
  ret
|}
  in
  match first_instrs p 8 with
  | [ Instr.Op_imm (ADDI, 0, 0, 0);
      Instr.Op_imm (ADDI, 10, 11, 0);
      Instr.Op_imm (XORI, 12, 13, -1);
      Instr.Op (SUB, 14, 0, 15);
      Instr.Op_imm (SLTIU, 5, 6, 1);
      Instr.Op (SLTU, 7, 0, 28);
      Instr.Jal (0, 4);
      Instr.Jalr (0, 1, 0) ] -> ()
  | l ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map Instr.to_string l))

let test_li_selection () =
  let p = assemble "_start:\n  li a0, 100\n  li a1, 0x12345678\n" in
  match first_instrs p 3 with
  | [ Instr.Op_imm (ADDI, 10, 0, 100); Instr.Lui (11, _);
      Instr.Op_imm (ADDI, 11, 11, _) ] -> ()
  | _ -> Alcotest.fail "li selection wrong"

let test_branch_pseudos () =
  let p =
    assemble
      {|
_start:
  beqz a0, l
  bnez a0, l
  blez a0, l
  bgez a0, l
  bltz a0, l
  bgtz a0, l
  bgt  a0, a1, l
  ble  a0, a1, l
l:
  nop
|}
  in
  match first_instrs p 8 with
  | [ Instr.Branch (BEQ, 10, 0, _); Instr.Branch (BNE, 10, 0, _);
      Instr.Branch (BGE, 0, 10, _); Instr.Branch (BGE, 10, 0, _);
      Instr.Branch (BLT, 10, 0, _); Instr.Branch (BLT, 0, 10, _);
      Instr.Branch (BLT, 11, 10, _); Instr.Branch (BGE, 11, 10, _) ] -> ()
  | l ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map Instr.to_string l))

let test_data_directives () =
  let p =
    assemble
      {|
_start:
  nop
  .data
d1:
  .word 0x11223344
d2:
  .half 0x5566
d3:
  .byte 0x77, 0x88
d4:
  .asciz "ok"
  .align 2
d5:
  .space 4
d7:
|}
  in
  let mem = S4e_mem.Sparse_mem.create () in
  Program.load p mem;
  let sym name =
    match Program.symbol p name with
    | Some a -> a
    | None -> Alcotest.failf "missing %s" name
  in
  Alcotest.(check int) "word" 0x11223344 (S4e_mem.Sparse_mem.read32 mem (sym "d1"));
  Alcotest.(check int) "half" 0x5566 (S4e_mem.Sparse_mem.read16 mem (sym "d2"));
  Alcotest.(check int) "byte" 0x77 (S4e_mem.Sparse_mem.read8 mem (sym "d3"));
  Alcotest.(check int) "byte2" 0x88 (S4e_mem.Sparse_mem.read8 mem (sym "d3" + 1));
  Alcotest.(check string) "asciz" "ok\000"
    (S4e_mem.Sparse_mem.dump_bytes mem (sym "d4") 3);
  Alcotest.(check int) "align" 0 (sym "d5" land 3);
  Alcotest.(check int) "space" 4 (sym "d7" - sym "d5")

let test_org_and_sections () =
  let p =
    assemble
      {|
  .org 0x80000100
_start:
  nop
  .data
  .org 0x80020000
v:
  .word 1
|}
  in
  Alcotest.(check int) "entry honors org" 0x80000100 p.Program.entry;
  Alcotest.(check (option int)) "data org" (Some 0x80020000)
    (Program.symbol p "v");
  Alcotest.(check (option (pair int int))) "code range"
    (Some (0x80000100, 0x80000104))
    (Program.code_range p)

let test_errors () =
  expect_error ~contains:"unknown mnemonic" "_start:\n  frobnicate a0\n";
  expect_error ~contains:"undefined symbol" "_start:\n  li a0, missing\n";
  expect_error ~contains:"duplicate label" "a:\na:\n  nop\n";
  expect_error ~contains:"does not fit" "_start:\n  addi a0, a0, 5000\n";
  expect_error ~contains:"bad operands" "_start:\n  add a0, a1\n";
  expect_error ~contains:"shift amount" "_start:\n  slli a0, a0, 32\n";
  expect_error ~contains:"branch offset" (
    "_start:\n  beq a0, a1, far\n  .org 0x80008000\nfar:\n  nop\n");
  expect_error ~contains:"unbalanced" "_start:\n  lw a0, (((\n"

let test_comments_and_whitespace () =
  let p =
    assemble
      "_start: # label comment\n\taddi a0, zero, 1 // c++ style\n  # whole line\n\n  addi a0, a0, 1\n"
  in
  Alcotest.(check int) "two instructions" 8 (Program.size p)

let test_line_numbers_in_errors () =
  match Asm.assemble "_start:\n  nop\n  bogus\n" with
  | Error e -> Alcotest.(check int) "line number" 3 e.Asm.line
  | Ok _ -> Alcotest.fail "expected error"

(* disassembler *)

let test_disasm_roundtrip_directed () =
  let src = {|
_start:
  addi a0, zero, 42
  lw   a1, 8(sp)
  beq  a0, a1, _start
|} in
  let p = assemble src in
  let lines = Disasm.disassemble_program p in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  match lines with
  | [ l1; l2; l3 ] ->
      Alcotest.(check string) "addi" "addi a0, zero, 42" l1.Disasm.text;
      Alcotest.(check string) "lw" "lw a1, 8(sp)" l2.Disasm.text;
      Alcotest.(check string) "beq" "beq a0, a1, -8" l3.Disasm.text
  | _ -> Alcotest.fail "unexpected"

let test_image_roundtrip () =
  let p =
    assemble {|
_start:
  li a0, 1
  call f
  ebreak
f:
  ret
  .data
v:
  .word 0xdeadbeef
  .asciz "payload"
|}
  in
  match Program.of_bytes (Program.to_bytes p) with
  | Ok p' ->
      Alcotest.(check bool) "identical" true (p = p')
  | Error m -> Alcotest.failf "roundtrip failed: %s" m

let test_image_rejects_garbage () =
  let bad s what =
    match Program.of_bytes s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should reject %s" what
  in
  bad "" "empty";
  bad "ELF\x7f" "wrong magic";
  bad "S4EP" "truncated header";
  let p = assemble "_start:\n  nop\n" in
  let good = Program.to_bytes p in
  bad (String.sub good 0 (String.length good - 2)) "truncated body";
  bad (good ^ "x") "trailing bytes";
  (* corrupt the version field *)
  let bytes = Bytes.of_string good in
  Bytes.set bytes 4 '\x63';
  bad (Bytes.to_string bytes) "bad version"

let props =
  [ prop "disassemble_word never raises" Gen.word32 (fun w ->
        ignore (Disasm.disassemble_word w);
        true);
    prop "of_bytes never raises on fuzz" QCheck.string (fun s ->
        (match Program.of_bytes s with Ok _ | Error _ -> ());
        (match Program.of_bytes ("S4EP" ^ s) with Ok _ | Error _ -> ());
        true);
    prop "image format roundtrips torture programs"
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 5000))
      (fun seed ->
        let p =
          S4e_torture.Torture.generate
            { S4e_torture.Torture.default_config with seed; segments = 6 }
        in
        match Program.of_bytes (Program.to_bytes p) with
        | Ok p' -> p = p'
        | Error _ -> false);
    prop "assembler output decodes" Gen.instr (fun i ->
        (* render with the pretty printer, reparse, re-encode *)
        match i with
        | Instr.Jal _ | Instr.Jalr _ | Instr.Branch _ | Instr.Csr _ ->
            true (* pc-relative / csr-name rendering handled in directed tests *)
        | _ -> (
            let src = "_start:\n  " ^ Instr.to_string i ^ "\n" in
            match Asm.assemble src with
            | Ok p -> (
                let mem = S4e_mem.Sparse_mem.create () in
                Program.load p mem;
                match
                  Decode.decode (S4e_mem.Sparse_mem.read32 mem p.Program.entry)
                with
                | Some i' -> Instr.equal i i'
                | None -> false)
            | Error _ -> false)) ]

let () =
  Alcotest.run "asm"
    [ ( "assembler",
        [ Alcotest.test_case "simple program" `Quick test_simple_program;
          Alcotest.test_case "expressions" `Quick test_expressions;
          Alcotest.test_case "hi/lo" `Quick test_hi_lo;
          Alcotest.test_case "pseudo expansion" `Quick test_pseudo_expansions;
          Alcotest.test_case "li selection" `Quick test_li_selection;
          Alcotest.test_case "branch pseudos" `Quick test_branch_pseudos;
          Alcotest.test_case "data directives" `Quick test_data_directives;
          Alcotest.test_case "org and sections" `Quick test_org_and_sections;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "comments/whitespace" `Quick
            test_comments_and_whitespace;
          Alcotest.test_case "error line numbers" `Quick
            test_line_numbers_in_errors ] );
      ( "disassembler",
        [ Alcotest.test_case "directed roundtrip" `Quick
            test_disasm_roundtrip_directed ] );
      ( "image-format",
        [ Alcotest.test_case "roundtrip" `Quick test_image_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_image_rejects_garbage ] );
      ("properties", props) ]
