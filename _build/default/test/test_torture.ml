(* Torture generator tests: determinism, termination, ISA respect,
   compressed emission, and suite well-formedness. *)

open S4e_isa
module Torture = S4e_torture.Torture
module Suites = S4e_torture.Suites
module Machine = S4e_cpu.Machine

let prop ?(count = 30) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let run_cfg cfg =
  let p = Torture.generate cfg in
  let m = Machine.create () in
  S4e_asm.Program.load_machine p m;
  (p, m, Machine.run m ~fuel:(Torture.fuel_bound cfg))

let test_deterministic () =
  let cfg = { Torture.default_config with seed = 7 } in
  let p1 = Torture.generate cfg and p2 = Torture.generate cfg in
  Alcotest.(check bool) "same bytes" true (p1 = p2);
  let p3 = Torture.generate { cfg with seed = 8 } in
  Alcotest.(check bool) "different seed differs" true (p1 <> p3)

let test_terminates_with_exit () =
  let _, _, stop = run_cfg { Torture.default_config with seed = 123 } in
  match stop with
  | Machine.Exited _ -> ()
  | _ -> Alcotest.failf "expected exit, got %a" Machine.pp_stop_reason stop

let test_compressed_variant_shrinks () =
  let cfg = { Torture.default_config with seed = 5 } in
  let plain = Torture.generate cfg in
  let rvc = Torture.generate { cfg with compress = true } in
  Alcotest.(check bool) "rvc image smaller" true
    (S4e_asm.Program.size rvc < S4e_asm.Program.size plain)

let mnemonics_of p =
  let m = Machine.create () in
  let seen = Hashtbl.create 64 in
  let _ =
    S4e_cpu.Hooks.on_insn m.Machine.hooks (fun _ i ->
        Hashtbl.replace seen (Instr.mnemonic i) ())
  in
  S4e_asm.Program.load_machine p m;
  let _ = Machine.run m ~fuel:1_000_000 in
  seen

let props =
  [ prop "every seed terminates via the syscon" seed_gen (fun seed ->
        let _, _, stop = run_cfg { Torture.default_config with seed } in
        match stop with Machine.Exited _ -> true | _ -> false);
    prop "determinism across decoder configs" seed_gen (fun seed ->
        let p = Torture.generate { Torture.default_config with seed } in
        let run config =
          let m = Machine.create ~config () in
          S4e_asm.Program.load_machine p m;
          (Machine.run m ~fuel:100_000, Machine.instret m)
        in
        run { Machine.default_config with Machine.decoder = Machine.Hand_decoder }
        = run { Machine.default_config with Machine.decoder = Machine.Decodetree_decoder });
    prop ~count:15 "RV32I-only config emits only I instructions" seed_gen
      (fun seed ->
        let cfg =
          { Torture.default_config with
            seed; isa = [ Isa_module.I ]; segments = 10 }
        in
        let p = Torture.generate cfg in
        let seen = mnemonics_of p in
        let universe = Isa_module.universe [ Isa_module.I ] in
        Hashtbl.fold (fun m () acc -> acc && List.mem m universe) seen true);
    prop ~count:15 "compressed programs behave like uncompressed ones"
      seed_gen
      (fun seed ->
        (* same seed => same instruction stream; both must exit (values
           may legitimately differ because pc-dependent behaviour is
           absent by construction, so they must in fact agree) *)
        let base = { Torture.default_config with seed; segments = 10 } in
        let p1 = Torture.generate base in
        let p2 = Torture.generate { base with compress = true } in
        let run p =
          let m = Machine.create () in
          S4e_asm.Program.load_machine p m;
          match Machine.run m ~fuel:100_000 with
          | Machine.Exited c -> Some c
          | _ -> None
        in
        match (run p1, run p2) with
        | Some a, Some b -> a = b
        | _ -> false) ]

let test_suites_assemble_and_pass () =
  let isa = Machine.default_config.Machine.isa in
  let all =
    Suites.arch_suite ~isa @ Suites.unit_suite ~isa
    @ Suites.torture_suite ~isa ~seeds:[ 1; 2 ]
  in
  Alcotest.(check bool) "several programs" true (List.length all >= 8);
  List.iter
    (fun (name, p) ->
      let m = Machine.create () in
      S4e_asm.Program.load_machine p m;
      match Machine.run m ~fuel:Suites.fuel with
      | Machine.Exited _ -> ()
      | stop ->
          Alcotest.failf "suite program %s: %a" name Machine.pp_stop_reason
            stop)
    all

let test_arch_suite_exits_zero () =
  let isa = Machine.default_config.Machine.isa in
  List.iter
    (fun (name, p) ->
      let m = Machine.create () in
      S4e_asm.Program.load_machine p m;
      match Machine.run m ~fuel:Suites.fuel with
      | Machine.Exited 0 -> ()
      | stop ->
          Alcotest.failf "%s should pass with 0: %a" name
            Machine.pp_stop_reason stop)
    (Suites.arch_suite ~isa)

let () =
  Alcotest.run "torture"
    [ ( "generator",
        [ Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "terminates" `Quick test_terminates_with_exit;
          Alcotest.test_case "compressed shrinks" `Quick
            test_compressed_variant_shrinks ] );
      ("properties", props);
      ( "suites",
        [ Alcotest.test_case "assemble and run" `Quick
            test_suites_assemble_and_pass;
          Alcotest.test_case "arch suite passes" `Quick
            test_arch_suite_exits_zero ] ) ]
