(* WCET pipeline tests: constant propagation, loop-bound inference, the
   hierarchical IPET, the annotated-CFG interchange format, the QTA
   co-simulation — and the headline soundness property

       dynamic cycles <= path WCET <= static WCET

   checked end-to-end on randomly generated programs. *)

module Cfg = S4e_cfg.Cfg
module Dom = S4e_cfg.Dominators
module Loops = S4e_cfg.Loops
module Analysis = S4e_wcet.Analysis
module Acfg = S4e_wcet.Annotated_cfg
module Machine = S4e_cpu.Machine

let prop ?(count = 40) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let parts src =
  let p = S4e_asm.Assembler.assemble_exn src in
  let decode = Cfg.decoder_of_program p in
  let g = Cfg.build ~decode ~entry:p.S4e_asm.Program.entry in
  let dom = Dom.compute g in
  let loops = Loops.compute g dom in
  (p, g, dom, loops)

(* ---------------- constant propagation ---------------- *)

let test_constprop_linear () =
  let _, g, _, _ =
    parts {|
_start:
  li   a0, 10
  addi a1, a0, 5
  slli a2, a1, 2
  ebreak
|}
  in
  let states = S4e_wcet.Constprop.entry_states g in
  let out = S4e_wcet.Constprop.transfer_block states.(0) g.Cfg.blocks.(0) in
  Alcotest.(check (option int)) "a0" (Some 10) out.(10);
  Alcotest.(check (option int)) "a1" (Some 15) out.(11);
  Alcotest.(check (option int)) "a2" (Some 60) out.(12)

let test_constprop_join () =
  let p, g, _, _ =
    parts {|
_start:
  beqz a5, other
  li   a0, 7
  li   a1, 1
  j    merge
other:
  li   a0, 7
  li   a1, 2
merge:
  ebreak
|}
  in
  let states = S4e_wcet.Constprop.entry_states g in
  let merge_id =
    match Cfg.block_at g (Option.get (S4e_asm.Program.symbol p "merge")) with
    | Some id -> id
    | None -> Alcotest.fail "merge block missing"
  in
  Alcotest.(check (option int)) "agreeing constant survives" (Some 7)
    states.(merge_id).(10);
  Alcotest.(check (option int)) "conflicting constant dies" None
    states.(merge_id).(11)

let test_constprop_call_clobbers () =
  let _, g, _, _ =
    parts {|
_start:
  li   a0, 3
  call f
  ebreak
f:
  ret
|}
  in
  let states = S4e_wcet.Constprop.entry_states g in
  (* block after the call: everything unknown *)
  let after_call = 1 in
  Alcotest.(check (option int)) "clobbered" None states.(after_call).(10)

(* ---------------- loop bounds ---------------- *)

let infer src =
  let _, g, dom, loops = parts src in
  let bounds =
    S4e_wcet.Loop_bounds.infer g dom loops ~annotations:(fun _ -> None)
  in
  (loops, bounds)

let single_bound src =
  let _, bounds = infer src in
  match bounds.S4e_wcet.Loop_bounds.bounds with
  | [ (_, b, S4e_wcet.Loop_bounds.Inferred) ] -> Some b
  | _ -> None

let test_bound_up_counter () =
  (* 10 iterations; padded bound is 11 *)
  Alcotest.(check (option int)) "blt up-count" (Some 11)
    (single_bound {|
_start:
  li a0, 0
  li a1, 10
l:
  addi a0, a0, 1
  blt a0, a1, l
  ebreak
|})

let test_bound_down_counter () =
  Alcotest.(check (option int)) "bgtz down-count" (Some 6)
    (single_bound {|
_start:
  li a0, 5
l:
  addi a0, a0, -1
  bgtz a0, l
  ebreak
|})

let test_bound_bne () =
  Alcotest.(check (option int)) "bne equality exit" (Some 9)
    (single_bound {|
_start:
  li a0, 0
  li a1, 16
l:
  addi a0, a0, 2
  bne a0, a1, l
  ebreak
|})

let test_bound_unsigned () =
  Alcotest.(check (option int)) "bltu" (Some 5)
    (single_bound {|
_start:
  li a0, 0
  li a1, 4
l:
  addi a0, a0, 1
  bltu a0, a1, l
  ebreak
|})

let test_unbounded_data_dependent () =
  let loops, bounds =
    infer {|
_start:
  lw a1, 0(sp)
  li a0, 0
l:
  addi a0, a0, 1
  blt a0, a1, l
  ebreak
|}
  in
  ignore loops;
  Alcotest.(check (list int)) "needs annotation" [ 0 ]
    bounds.S4e_wcet.Loop_bounds.unbounded

let test_annotation_wins () =
  let _, g, dom, loops =
    parts {|
_start:
  li a0, 0
  li a1, 10
l:
  addi a0, a0, 1
  blt a0, a1, l
  ebreak
|}
  in
  let header_pc = g.Cfg.blocks.(loops.Loops.loops.(0).Loops.header).Cfg.start_pc in
  let bounds =
    S4e_wcet.Loop_bounds.infer g dom loops ~annotations:(fun pc ->
        if pc = header_pc then Some 3 else None)
  in
  match bounds.S4e_wcet.Loop_bounds.bounds with
  | [ (_, 3, S4e_wcet.Loop_bounds.Annotated) ] -> ()
  | _ -> Alcotest.fail "annotation should override inference"

(* ---------------- analysis driver ---------------- *)

let analyze_exn ?annotations src =
  let p = S4e_asm.Assembler.assemble_exn src in
  match Analysis.analyze ?annotations p with
  | Ok r -> r
  | Error e -> Alcotest.failf "analysis failed: %s" (Analysis.describe_error e)

let test_straightline_wcet_exact () =
  (* no branches: static WCET must equal dynamic cycles exactly *)
  let src = {|
_start:
  li   a0, 1
  li   a1, 2
  add  a2, a0, a1
  mul  a3, a2, a1
  li   t1, 0x00100000
  sw   a3, 0(t1)
  ebreak
|} in
  let r = analyze_exn src in
  let p = S4e_asm.Assembler.assemble_exn src in
  let m = Machine.create () in
  S4e_asm.Program.load_machine p m;
  (match Machine.run m ~fuel:1000 with
  | Machine.Exited 6 -> ()
  | stop -> Alcotest.failf "unexpected stop: %a" Machine.pp_stop_reason stop);
  (* the ebreak after the exit store never executes and the final sw's
     exit happens after charging, so dynamic equals static exactly for
     the executed prefix + the never-executed trailing ebreak bound. *)
  Alcotest.(check bool) "static >= dynamic" true
    (r.Analysis.program_wcet >= Machine.cycles m)

let test_calls_accumulate () =
  let r =
    analyze_exn {|
_start:
  call f
  call f
  ebreak
f:
  li a0, 1
  li a1, 2
  ret
|}
  in
  let f_wcet =
    List.find_map
      (fun (fr : Analysis.func_report) ->
        if fr.Analysis.fr_name = Some "f" then Some fr.Analysis.fr_wcet
        else None)
      r.Analysis.functions
  in
  match f_wcet with
  | None -> Alcotest.fail "missing f"
  | Some fw ->
      Alcotest.(check bool) "two calls cost at least 2x callee" true
        (r.Analysis.program_wcet >= (2 * fw))

let test_recursion_rejected () =
  let p = S4e_asm.Assembler.assemble_exn {|
_start:
  call f
  ebreak
f:
  call f
  ret
|} in
  match Analysis.analyze p with
  | Error Analysis.E_recursion -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Analysis.describe_error e)
  | Ok _ -> Alcotest.fail "recursion must be rejected"

let test_indirect_rejected () =
  let p = S4e_asm.Assembler.assemble_exn {|
_start:
  la a0, _start
  jalr zero, 0(a0)
|} in
  match Analysis.analyze p with
  | Error (Analysis.E_indirect_jump _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Analysis.describe_error e)
  | Ok _ -> Alcotest.fail "indirect jump must be rejected"

let test_unbounded_reported () =
  let p = S4e_asm.Assembler.assemble_exn {|
_start:
spin:
  j spin
|} in
  match Analysis.analyze p with
  | Error (Analysis.E_unbounded_loop _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Analysis.describe_error e)
  | Ok _ -> Alcotest.fail "infinite loop must be rejected"

(* ---------------- annotated CFG format ---------------- *)

let test_acfg_roundtrip_directed () =
  let p =
    S4e_asm.Assembler.assemble_exn {|
_start:
  li a0, 0
  li a1, 8
l:
  addi a0, a0, 1
  blt a0, a1, l
  call f
  ebreak
f:
  ret
|}
  in
  match Acfg.of_program p with
  | Error e -> Alcotest.failf "acfg: %s" (Analysis.describe_error e)
  | Ok acfg -> (
      let text = Acfg.to_string acfg in
      match Acfg.of_string text with
      | Error m -> Alcotest.failf "parse: %s" m
      | Ok acfg2 ->
          Alcotest.(check string) "print . parse . print = print" text
            (Acfg.to_string acfg2);
          Alcotest.(check int) "entry survives" acfg.Acfg.entry acfg2.Acfg.entry;
          Alcotest.(check int) "wcet survives" acfg.Acfg.program_wcet
            acfg2.Acfg.program_wcet)

let test_acfg_parse_errors () =
  let bad s =
    match Acfg.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should not parse: %s" s
  in
  bad "entry zzz\n";
  bad "entry 0x80000000\nblock 0x1 2 3\n";  (* block outside function *)
  bad "entry 0x80000000\nprogram-wcet 5\nfunction 0x80000000\n";  (* unterminated *)
  bad "entry 0x80000000\nfunction 0x1\nend\n"  (* missing program-wcet *)

(* ---------------- the QTA chain on random programs ---------------- *)

let torture_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let qta_chain seed =
  let cfg =
    { S4e_torture.Torture.default_config with
      seed; segments = 10; allow_memory = true }
  in
  let p = S4e_torture.Torture.generate cfg in
  match S4e_core.Flows.wcet_flow ~fuel:(S4e_torture.Torture.fuel_bound cfg) p with
  | Error e ->
      QCheck.Test.fail_reportf "analysis failed on seed %d: %s" seed
        (Analysis.describe_error e)
  | Ok r -> r

let test_wcet_exact_hand_computed () =
  (* hand-checkable program (no loads, so no hazard terms):
     B0 = [li;li]            cost 2, goto loop
     B1 = [addi;blt]         cost 1+3 = 4, header & latch, bound 4 (3 + pad)
     B2 = [ebreak]           cost 3
     static = 2 + (4 + 4*4) + 3 = 25 under the hazard-free model *)
  let p =
    S4e_asm.Assembler.assemble_exn {|
_start:
  li a0, 0
  li a1, 3
loop:
  addi a0, a0, 1
  blt a0, a1, loop
  ebreak
|}
  in
  let model = S4e_cpu.Timing_model.without_hazards S4e_cpu.Timing_model.default in
  match Analysis.analyze ~model p with
  | Error e -> Alcotest.failf "analysis: %s" (Analysis.describe_error e)
  | Ok r -> Alcotest.(check int) "hand-computed WCET" 25 r.Analysis.program_wcet

let test_bound_monotone_in_annotations () =
  (* raising a loop's bound annotation can only raise the program WCET *)
  let src = {|
_start:
  li a0, 0
  li a1, 10
l:
  addi a0, a0, 1
  blt a0, a1, l
  ebreak
|} in
  let p = S4e_asm.Assembler.assemble_exn src in
  let wcet_with bound =
    match Analysis.analyze ~annotations:[ ("l", bound) ] p with
    | Ok r -> r.Analysis.program_wcet
    | Error e -> Alcotest.failf "analysis: %s" (Analysis.describe_error e)
  in
  let prev = ref 0 in
  List.iter
    (fun b ->
      let w = wcet_with b in
      Alcotest.(check bool)
        (Printf.sprintf "wcet(%d) >= wcet(prev)" b)
        true (w >= !prev);
      prev := w)
    [ 1; 5; 11; 100; 10_000 ]

let soundness_props =
  [ prop ~count:60 "dynamic <= path WCET <= static WCET (torture)"
      torture_seed
      (fun seed ->
        let r = qta_chain seed in
        (match r.S4e_core.Flows.wr_stop with
        | Machine.Exited _ -> ()
        | stop ->
            QCheck.Test.fail_reportf "seed %d did not exit: %a" seed
              Machine.pp_stop_reason stop);
        r.S4e_core.Flows.wr_dynamic <= r.S4e_core.Flows.wr_path
        && r.S4e_core.Flows.wr_path <= r.S4e_core.Flows.wr_static);
    prop ~count:20 "soundness holds under the rocket timing model"
      torture_seed
      (fun seed ->
        let cfg =
          { S4e_torture.Torture.default_config with seed; segments = 8 }
        in
        let p = S4e_torture.Torture.generate cfg in
        match
          S4e_core.Flows.wcet_flow ~model:S4e_cpu.Timing_model.rocket_like
            ~fuel:(S4e_torture.Torture.fuel_bound cfg) p
        with
        | Error _ -> false
        | Ok r ->
            r.S4e_core.Flows.wr_dynamic <= r.S4e_core.Flows.wr_path
            && r.S4e_core.Flows.wr_path <= r.S4e_core.Flows.wr_static);
    prop ~count:30 "acfg roundtrips on torture programs" torture_seed
      (fun seed ->
        let p =
          S4e_torture.Torture.generate
            { S4e_torture.Torture.default_config with seed; segments = 8 }
        in
        match Acfg.of_program p with
        | Error _ -> false
        | Ok acfg -> (
            let text = Acfg.to_string acfg in
            match Acfg.of_string text with
            | Ok acfg2 -> Acfg.to_string acfg2 = text
            | Error _ -> false)) ]

let () =
  Alcotest.run "wcet"
    [ ( "constprop",
        [ Alcotest.test_case "linear" `Quick test_constprop_linear;
          Alcotest.test_case "join" `Quick test_constprop_join;
          Alcotest.test_case "call clobbers" `Quick test_constprop_call_clobbers ] );
      ( "loop-bounds",
        [ Alcotest.test_case "up counter" `Quick test_bound_up_counter;
          Alcotest.test_case "down counter" `Quick test_bound_down_counter;
          Alcotest.test_case "bne exit" `Quick test_bound_bne;
          Alcotest.test_case "unsigned" `Quick test_bound_unsigned;
          Alcotest.test_case "data-dependent unbounded" `Quick
            test_unbounded_data_dependent;
          Alcotest.test_case "annotation wins" `Quick test_annotation_wins ] );
      ( "analysis",
        [ Alcotest.test_case "straight-line" `Quick test_straightline_wcet_exact;
          Alcotest.test_case "calls accumulate" `Quick test_calls_accumulate;
          Alcotest.test_case "recursion rejected" `Quick test_recursion_rejected;
          Alcotest.test_case "indirect rejected" `Quick test_indirect_rejected;
          Alcotest.test_case "unbounded reported" `Quick test_unbounded_reported;
          Alcotest.test_case "bound monotone" `Quick
            test_bound_monotone_in_annotations;
          Alcotest.test_case "hand-computed exact" `Quick
            test_wcet_exact_hand_computed ] );
      ( "acfg",
        [ Alcotest.test_case "roundtrip" `Quick test_acfg_roundtrip_directed;
          Alcotest.test_case "parse errors" `Quick test_acfg_parse_errors ] );
      ("soundness", soundness_props) ]
