(* Coverage metric tests: collection, combination, and the E1 shape. *)

open S4e_isa
module Machine = S4e_cpu.Machine
module Report = S4e_coverage.Report
module Collector = S4e_coverage.Collector

let full_isa = Machine.default_config.Machine.isa

let collect ?(isa = full_isa) src =
  let p = S4e_asm.Assembler.assemble_exn src in
  let m = Machine.create () in
  let c = Collector.attach m ~isa () in
  S4e_asm.Program.load_machine p m;
  let _ = Machine.run m ~fuel:100_000 in
  let rep = Collector.report c in
  Collector.detach m c;
  rep

let test_instruction_recording () =
  let rep =
    collect {|
_start:
  addi a0, zero, 1
  addi a0, a0, 1
  mul  a1, a0, a0
  ebreak
|}
  in
  Alcotest.(check (option int)) "addi counted twice" (Some 2)
    (Hashtbl.find_opt rep.Report.executed "addi");
  Alcotest.(check (option int)) "mul once" (Some 1)
    (Hashtbl.find_opt rep.Report.executed "mul");
  Alcotest.(check int) "three + trap path" 3
    (Hashtbl.fold (fun _ v acc -> acc + v) rep.Report.executed 0 - 1)

let test_register_recording () =
  let rep =
    collect {|
_start:
  addi a0, zero, 1
  add  a1, a0, a0
  ebreak
|}
  in
  Alcotest.(check bool) "a0 written" true rep.Report.gpr_written.(10);
  Alcotest.(check bool) "a0 read" true rep.Report.gpr_read.(10);
  Alcotest.(check bool) "a1 written" true rep.Report.gpr_written.(11);
  Alcotest.(check bool) "x0 read" true rep.Report.gpr_read.(0);
  Alcotest.(check bool) "s5 untouched" false
    (rep.Report.gpr_read.(21) || rep.Report.gpr_written.(21))

let test_csr_and_mem_recording () =
  let rep =
    collect {|
_start:
  csrw mscratch, a0
  li   t0, 0x80001000
  lw   a1, 0(t0)
  sw   a1, 4(t0)
  ebreak
|}
  in
  Alcotest.(check bool) "mscratch accessed" true
    (Hashtbl.mem rep.Report.csr_accessed Csr.mscratch);
  Alcotest.(check int) "two data accesses" 2 rep.Report.mem_accesses;
  Alcotest.(check int) "mem lo" 0x80001000 rep.Report.mem_lo;
  Alcotest.(check int) "mem hi" 0x80001008 rep.Report.mem_hi

let test_metrics_and_missed () =
  let rep = collect "_start:\n  addi a0, zero, 1\n  ebreak\n" in
  let universe = Isa_module.universe full_isa in
  Alcotest.(check bool) "tiny instruction coverage" true
    (Report.instruction_coverage rep < 0.1);
  Alcotest.(check int) "missed count" (List.length universe - 2)
    (List.length (Report.missed_instructions rep));
  Alcotest.(check bool) "gpr partial" true
    (Report.gpr_coverage rep > 0.0 && Report.gpr_coverage rep < 0.2)

let test_combine_is_union () =
  let a = collect "_start:\n  addi a0, zero, 1\n  ebreak\n" in
  let b = collect "_start:\n  mul a1, a2, a3\n  ebreak\n" in
  let u = Report.combine a b in
  Alcotest.(check bool) "addi in union" true (Hashtbl.mem u.Report.executed "addi");
  Alcotest.(check bool) "mul in union" true (Hashtbl.mem u.Report.executed "mul");
  Alcotest.(check bool) "coverage monotone vs a" true
    (Report.instruction_coverage u >= Report.instruction_coverage a);
  Alcotest.(check bool) "coverage monotone vs b" true
    (Report.instruction_coverage u >= Report.instruction_coverage b);
  Alcotest.(check bool) "gpr union" true
    (u.Report.gpr_written.(10) && u.Report.gpr_written.(11))

let test_detach_stops_recording () =
  let p = S4e_asm.Assembler.assemble_exn "_start:\n  addi a0, zero, 1\n  ebreak\n" in
  let m = Machine.create () in
  let c = Collector.attach m () in
  Collector.detach m c;
  S4e_asm.Program.load_machine p m;
  let _ = Machine.run m ~fuel:100 in
  Alcotest.(check int) "nothing recorded" 0
    (Report.executed_count (Collector.report c))

(* the E1 experiment shape *)
let test_unified_suite_shape () =
  let isa = full_isa in
  let suite name progs =
    (name, S4e_core.Flows.coverage_of_suite ~fuel:S4e_torture.Suites.fuel progs)
  in
  let arch = suite "arch" (S4e_torture.Suites.arch_suite ~isa) in
  let unit = suite "unit" (S4e_torture.Suites.unit_suite ~isa) in
  let tort =
    suite "torture" (S4e_torture.Suites.torture_suite ~isa ~seeds:[ 1; 2; 3 ])
  in
  (* each suite individually has gaps *)
  Alcotest.(check bool) "arch misses registers" true
    (Report.gpr_coverage (snd arch) < 1.0);
  Alcotest.(check bool) "unit misses instructions" true
    (Report.instruction_coverage (snd unit) < 0.5);
  Alcotest.(check bool) "torture misses CSRs" true
    (Report.csr_coverage (snd tort) < 1.0);
  (* the union reaches full register coverage and high-90s instructions *)
  let union =
    List.fold_left
      (fun acc (_, r) -> Report.combine acc r)
      (Report.create ~isa)
      [ arch; unit; tort ]
  in
  Alcotest.(check (float 0.001)) "100% GPR" 1.0 (Report.gpr_coverage union);
  Alcotest.(check (float 0.001)) "100% FPR" 1.0 (Report.fpr_coverage union);
  Alcotest.(check (float 0.001)) "100% CSR" 1.0 (Report.csr_coverage union);
  let ic = Report.instruction_coverage union in
  Alcotest.(check bool) "instruction coverage in the high 90s" true
    (ic > 0.95 && ic < 1.0);
  Alcotest.(check (list string)) "exactly wfi missing" [ "wfi" ]
    (Report.missed_instructions union)

let () =
  Alcotest.run "coverage"
    [ ( "collector",
        [ Alcotest.test_case "instructions" `Quick test_instruction_recording;
          Alcotest.test_case "registers" `Quick test_register_recording;
          Alcotest.test_case "csr and memory" `Quick test_csr_and_mem_recording;
          Alcotest.test_case "metrics" `Quick test_metrics_and_missed;
          Alcotest.test_case "combine" `Quick test_combine_is_union;
          Alcotest.test_case "detach" `Quick test_detach_stops_recording ] );
      ( "experiment-shape",
        [ Alcotest.test_case "unified suite (E1)" `Slow
            test_unified_suite_shape ] ) ]
