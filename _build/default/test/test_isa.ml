(* ISA model tests: encoders, the two decoders, their equivalence
   (experiment E7's correctness half), and the compressed extension. *)

open S4e_isa

let prop ?(count = 1000) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

(* ---------------- registers ---------------- *)

let test_reg_names () =
  Alcotest.(check string) "abi sp" "sp" (Reg.abi_name 2);
  Alcotest.(check string) "abi a0" "a0" (Reg.abi_name 10);
  Alcotest.(check string) "x name" "x17" (Reg.x_name 17);
  Alcotest.(check (option int)) "parse x9" (Some 9) (Reg.of_name "x9");
  Alcotest.(check (option int)) "parse abi" (Some 2) (Reg.of_name "sp");
  Alcotest.(check (option int)) "parse fp alias" (Some 8) (Reg.of_name "fp");
  Alcotest.(check (option int)) "parse s0" (Some 8) (Reg.of_name "s0");
  Alcotest.(check (option int)) "reject x32" None (Reg.of_name "x32");
  Alcotest.(check (option int)) "reject junk" None (Reg.of_name "bogus");
  Alcotest.(check (option int)) "parse fa0" (Some 10) (Reg.f_of_name "fa0");
  Alcotest.(check (option int)) "parse f31" (Some 31) (Reg.f_of_name "f31");
  Alcotest.(check string) "f name" "ft0" (Reg.f_name 0)

let test_csr_names () =
  Alcotest.(check (option int)) "mstatus" (Some 0x300) (Csr.of_name "mstatus");
  Alcotest.(check string) "name roundtrip" "mepc" (Csr.name Csr.mepc);
  Alcotest.(check string) "unknown name" "csr0x123" (Csr.name 0x123);
  Alcotest.(check bool) "cycle read-only" true (Csr.is_read_only Csr.cycle);
  Alcotest.(check bool) "mstatus writable" false (Csr.is_read_only Csr.mstatus);
  Alcotest.(check bool) "implemented sorted" true
    (let l = Csr.implemented in
     List.sort compare l = l)

(* ---------------- encode/decode ---------------- *)

let roundtrip i =
  match Decode.decode (Encode.encode i) with
  | Some i' -> Instr.equal i i'
  | None -> false

let test_directed_encodings () =
  (* spot-check against known RISC-V encodings *)
  let expect word instr =
    Alcotest.(check int) (Instr.to_string instr) word (Encode.encode instr)
  in
  expect 0x00000013 (Instr.Op_imm (ADDI, 0, 0, 0));  (* canonical nop *)
  expect 0x00100093 (Instr.Op_imm (ADDI, 1, 0, 1));
  expect 0x00a02223 (Instr.Store (SW, 10, 0, 4));
  expect 0x00002503 (Instr.Load (LW, 10, 0, 0));
  expect 0x00000073 Instr.Ecall;
  expect 0x00100073 Instr.Ebreak;
  expect 0x30200073 Instr.Mret;
  expect 0x10500073 Instr.Wfi;
  expect 0x40a58633 (Instr.Op (SUB, 12, 11, 10));
  expect 0x02a5d5b3 (Instr.Op (DIVU, 11, 11, 10));
  expect 0x800005b7 (Instr.Lui (11, 0x80000));
  expect 0x0040006f (Instr.Jal (0, 4));
  expect 0x00008067 (Instr.Jalr (0, 1, 0))  (* ret *)

let test_decode_rejects () =
  let reject w =
    Alcotest.(check bool) (Printf.sprintf "0x%08x" w) true
      (Decode.decode w = None)
  in
  reject 0x0;  (* all zeros: compressed space *)
  reject 0xFFFF_FFFF;  (* all ones *)
  reject 0x00000057;  (* unused opcode *)
  reject 0x00001067;  (* jalr with funct3 = 1 *)
  reject 0x00002063;  (* branch funct3 = 2 *)
  (* op with reserved funct7 *)
  reject (Fields.r_type ~opcode:0x33 ~funct3:0 ~funct7:0x11 ~rd:1 ~rs1:2 ~rs2:3);
  (* shift with reserved funct7 *)
  reject (Fields.r_type ~opcode:0x13 ~funct3:1 ~funct7:0x11 ~rd:1 ~rs1:2 ~rs2:3);
  (* fp with reserved funct7 *)
  reject (Fields.r_type ~opcode:0x53 ~funct3:0 ~funct7:0x01 ~rd:1 ~rs1:2 ~rs2:3)

let test_decodetree_compiles () =
  let tree = Decodetree.rv32 () in
  let stats = Decodetree.stats tree in
  Alcotest.(check bool) "has rows" true (stats.Decodetree.rows >= 90);
  Alcotest.(check bool) "has switch nodes" true (stats.Decodetree.switch_nodes > 0);
  Alcotest.(check bool) "bounded leaf width" true
    (stats.Decodetree.max_leaf_width <= 8);
  Alcotest.(check (option (pair string string))) "no overlap" None
    (Decodetree.check_overlap Decodetree.rv32_rows)

let test_decodetree_rejects_bad_rows () =
  let bad_value =
    [ { Decodetree.name = "bad"; mask = 0x7F; value = 0x80;
        operands = (fun _ -> Instr.Ecall) } ]
  in
  Alcotest.check_raises "value outside mask"
    (Invalid_argument
       "Decodetree.compile: row bad has value bits outside its mask")
    (fun () -> ignore (Decodetree.compile bad_value));
  let overlapping =
    [ { Decodetree.name = "a"; mask = 0x7F; value = 0x37;
        operands = (fun _ -> Instr.Ecall) };
      { Decodetree.name = "b"; mask = 0x3F; value = 0x37;
        operands = (fun _ -> Instr.Ecall) } ]
  in
  Alcotest.check_raises "overlapping rows"
    (Invalid_argument "Decodetree.compile: rows a and b overlap")
    (fun () -> ignore (Decodetree.compile overlapping))

(* ---------------- compressed ---------------- *)

let test_compressed_directed () =
  let expand h expected =
    match Compressed.decode16 h with
    | Some i ->
        Alcotest.(check string) (Printf.sprintf "0x%04x" h) expected
          (Instr.to_string i)
    | None -> Alcotest.failf "0x%04x did not decode" h
  in
  expand 0x0001 "addi zero, zero, 0";  (* c.nop *)
  expand 0x4501 "addi a0, zero, 0";  (* c.li a0, 0 *)
  expand 0x852e "add a0, zero, a1";  (* c.mv a0, a1 *)
  expand 0x952e "add a0, a0, a1";  (* c.add a0, a1 *)
  expand 0x8082 "jalr zero, 0(ra)";  (* c.ret *)
  expand 0x9002 "ebreak";
  Alcotest.(check bool) "all zeros illegal" true (Compressed.decode16 0 = None);
  Alcotest.(check bool) "quadrant 3 rejected" true
    (Compressed.decode16 0xFFFF = None)

let exec_equal_via_encode i =
  (* a compressed instruction must expand to something the 32-bit
     encoder can also express *)
  match Compressed.compress i with
  | None -> true
  | Some h -> (
      match Compressed.decode16 h with
      | Some i' -> Instr.equal i i'
      | None -> false)

(* ---------------- properties ---------------- *)

let props =
  [ prop "decode . encode = id" Gen.instr roundtrip;
    prop ~count:5000 "decodetree = hand decoder on random words"
      Gen.encoding_word
      (let tree = Decodetree.rv32 () in
       fun w ->
         match (Decode.decode w, Decodetree.decode tree w) with
         | None, None -> true
         | Some a, Some b -> Instr.equal a b
         | Some _, None | None, Some _ -> false);
    prop "decodetree agrees on valid encodings" Gen.instr
      (let tree = Decodetree.rv32 () in
       fun i ->
         match Decodetree.decode tree (Encode.encode i) with
         | Some i' -> Instr.equal i i'
         | None -> false);
    prop "compress roundtrips" Gen.instr exec_equal_via_encode;
    prop ~count:5000 "decode16 total (never crashes)" Gen.halfword (fun h ->
        ignore (Compressed.decode16 h);
        true);
    prop "compressed halfwords stay compressed" Gen.instr (fun i ->
        match Compressed.compress i with
        | None -> true
        | Some h -> h land 0x3 <> 0x3 && h >= 0 && h <= 0xFFFF);
    prop "mnemonic is stable under roundtrip" Gen.instr (fun i ->
        match Decode.decode (Encode.encode i) with
        | Some i' -> String.equal (Instr.mnemonic i) (Instr.mnemonic i')
        | None -> false);
    prop "sources/destination within register file" Gen.instr (fun i ->
        List.for_all (fun r -> r >= 0 && r < 32) (Instr.sources i)
        && (match Instr.destination i with
           | Some d -> d >= 0 && d < 32
           | None -> true));
    prop "every mnemonic belongs to a module" Gen.instr (fun i ->
        List.mem (Instr.mnemonic i)
          (Isa_module.universe
             [ Isa_module.I; M; A; F; C; Zicsr; B ])) ]

let test_universe_consistency () =
  (* the decodetree row names must match the module universe *)
  let universe =
    Isa_module.universe [ Isa_module.I; M; A; F; Zicsr; B ]
  in
  List.iter
    (fun row ->
      Alcotest.(check bool)
        ("row in universe: " ^ row.Decodetree.name)
        true
        (List.mem row.Decodetree.name universe))
    Decodetree.rv32_rows;
  (* and every universe mnemonic except wfi-style system special cases
     must have a row *)
  let row_names = List.map (fun r -> r.Decodetree.name) Decodetree.rv32_rows in
  List.iter
    (fun m ->
      Alcotest.(check bool) ("universe has row: " ^ m) true
        (List.mem m row_names))
    universe

let test_isa_strings () =
  Alcotest.(check string) "full" "RV32IMFC_Zicsr_B"
    (Isa_module.isa_string [ Isa_module.I; M; F; C; Zicsr; B ]);
  Alcotest.(check string) "base" "RV32I" (Isa_module.isa_string [ Isa_module.I ]);
  Alcotest.(check (option string)) "of_name roundtrip"
    (Some "Zicsr")
    (Option.map Isa_module.name (Isa_module.of_name "Zicsr"))

let () =
  Alcotest.run "isa"
    [ ( "unit",
        [ Alcotest.test_case "register names" `Quick test_reg_names;
          Alcotest.test_case "csr names" `Quick test_csr_names;
          Alcotest.test_case "directed encodings" `Quick test_directed_encodings;
          Alcotest.test_case "decode rejects" `Quick test_decode_rejects;
          Alcotest.test_case "decodetree compiles" `Quick test_decodetree_compiles;
          Alcotest.test_case "decodetree bad rows" `Quick
            test_decodetree_rejects_bad_rows;
          Alcotest.test_case "compressed directed" `Quick test_compressed_directed;
          Alcotest.test_case "universe consistency" `Quick
            test_universe_consistency;
          Alcotest.test_case "isa strings" `Quick test_isa_strings ] );
      ("properties", props) ]
