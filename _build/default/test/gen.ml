(* Shared QCheck generators for the test suites. *)

open S4e_isa
open S4e_isa.Instr

let reg = QCheck.Gen.int_bound 31
let freg = QCheck.Gen.int_bound 31
let imm12 = QCheck.Gen.int_range (-2048) 2047
let imm20 = QCheck.Gen.int_bound 0xFFFFF
let shamt = QCheck.Gen.int_bound 31

(* even, 13-bit signed *)
let branch_off = QCheck.Gen.map (fun i -> i * 2) (QCheck.Gen.int_range (-2048) 2047)

(* even, 21-bit signed *)
let jal_off =
  QCheck.Gen.map (fun i -> i * 2) (QCheck.Gen.int_range (-524288) 524287)

let op_r =
  QCheck.Gen.oneofl
    [ ADD; SUB; SLL; SLT; SLTU; XOR; SRL; SRA; OR; AND; MUL; MULH; MULHSU;
      MULHU; DIV; DIVU; REM; REMU; ANDN; ORN; XNOR; ROL; ROR; MIN; MAX;
      MINU; MAXU; BSET; BCLR; BINV; BEXT ]

let op_i = QCheck.Gen.oneofl [ ADDI; SLTI; SLTIU; XORI; ORI; ANDI ]
let op_shift =
  QCheck.Gen.oneofl [ SLLI; SRLI; SRAI; RORI; BSETI; BCLRI; BINVI; BEXTI ]
let op_load = QCheck.Gen.oneofl [ LB; LH; LW; LBU; LHU ]
let op_store = QCheck.Gen.oneofl [ SB; SH; SW ]
let op_branch = QCheck.Gen.oneofl [ BEQ; BNE; BLT; BGE; BLTU; BGEU ]

let op_unary =
  QCheck.Gen.oneofl [ CLZ; CTZ; CPOP; SEXT_B; SEXT_H; ZEXT_H; REV8; ORC_B ]

let op_csr =
  QCheck.Gen.oneofl [ CSRRW; CSRRS; CSRRC; CSRRWI; CSRRSI; CSRRCI ]

let op_fp =
  QCheck.Gen.oneofl [ FADD; FSUB; FMUL; FDIV; FMIN; FMAX; FSGNJ; FSGNJN; FSGNJX ]

let op_fp_cmp = QCheck.Gen.oneofl [ FEQ; FLT; FLE ]

let op_amo =
  QCheck.Gen.oneofl
    [ AMOSWAP; AMOADD; AMOXOR; AMOAND; AMOOR; AMOMIN; AMOMAX; AMOMINU;
      AMOMAXU ]

let csr_addr = QCheck.Gen.int_bound 0xFFF

let instr_gen : Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [ map2 (fun rd imm -> Lui (rd, imm)) reg imm20;
      map2 (fun rd imm -> Auipc (rd, imm)) reg imm20;
      map2 (fun rd off -> Jal (rd, off)) reg jal_off;
      map3 (fun rd rs1 imm -> Jalr (rd, rs1, imm)) reg reg imm12;
      map3 (fun op (rs1, rs2) off -> Branch (op, rs1, rs2, off)) op_branch
        (pair reg reg) branch_off;
      map3 (fun op (rd, rs1) imm -> Load (op, rd, rs1, imm)) op_load
        (pair reg reg) imm12;
      map3 (fun op (src, base) imm -> Store (op, src, base, imm)) op_store
        (pair reg reg) imm12;
      map3 (fun op (rd, rs1) imm -> Op_imm (op, rd, rs1, imm)) op_i
        (pair reg reg) imm12;
      map3 (fun op (rd, rs1) sh -> Shift_imm (op, rd, rs1, sh)) op_shift
        (pair reg reg) shamt;
      map3 (fun op (rd, rs1) rs2 -> Op (op, rd, rs1, rs2)) op_r
        (pair reg reg) reg;
      map2 (fun op (rd, rs1) -> Unary (op, rd, rs1)) op_unary (pair reg reg);
      oneofl [ Fence; Fence_i; Ecall; Ebreak; Mret; Wfi ];
      map3 (fun op (rd, csr) src -> Csr (op, rd, csr, src)) op_csr
        (pair reg csr_addr) reg;
      map3 (fun frd base imm -> Flw (frd, base, imm)) freg reg imm12;
      map3 (fun fsrc base imm -> Fsw (fsrc, base, imm)) freg reg imm12;
      map3 (fun op (frd, frs1) frs2 -> Fp_op (op, frd, frs1, frs2)) op_fp
        (pair freg freg) freg;
      map3 (fun op (rd, frs1) frs2 -> Fp_cmp (op, rd, frs1, frs2)) op_fp_cmp
        (pair reg freg) freg;
      map2 (fun frd frs1 -> Fsqrt (frd, frs1)) freg freg;
      map3 (fun rd frs1 u -> Fcvt_w_s (rd, frs1, u)) reg freg bool;
      map3 (fun frd rs1 u -> Fcvt_s_w (frd, rs1, u)) freg reg bool;
      map2 (fun rd frs1 -> Fmv_x_w (rd, frs1)) reg freg;
      map2 (fun frd rs1 -> Fmv_w_x (frd, rs1)) freg reg;
      map2 (fun rd rs1 -> Lr (rd, rs1)) reg reg;
      map3 (fun rd src rs1 -> Sc (rd, src, rs1)) reg reg reg;
      map3 (fun op (rd, src) rs1 -> Amo (op, rd, src, rs1)) op_amo
        (pair reg reg) reg ]

let instr =
  QCheck.make ~print:Instr.to_string instr_gen

let word32 = QCheck.map (fun i -> i land 0xFFFF_FFFF) QCheck.int

(* A random word in the 32-bit encoding space (low bits = 11). *)
let encoding_word = QCheck.map (fun w -> w lor 0x3) word32

let halfword =
  QCheck.map (fun i -> i land 0xFFFF) QCheck.int
