(* Response-time analysis tests: textbook task sets with known results,
   structural properties, and the WCET-to-RTA bridge. *)

module Rta = S4e_rtos.Rta

let prop ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let t = Rta.task

(* The classic three-task example (Burns & Wellings): C/T =
   (1,4) (1,5)... use a standard instance with hand-computed responses. *)
let textbook =
  [ t ~name:"t1" ~wcet:1 ~period:4 ();
    t ~name:"t2" ~wcet:2 ~period:6 ();
    t ~name:"t3" ~wcet:3 ~period:13 () ]

let test_textbook_responses () =
  let a = Rta.analyze textbook in
  (* R1 = 1; R2 = 2 + ceil(3/4)*1 = 3; R3: 3 + I -> fixed point:
     r=3: 3 + ceil(3/4)+... iterate: start 3 ->
       3 + ceil(3/4)*1 + ceil(3/6)*2 = 3+1+2 = 6
       3 + ceil(6/4)*1 + ceil(6/6)*2 = 3+2+2 = 7
       3 + ceil(7/4)*1 + ceil(7/6)*2 = 3+2+4 = 9
       3 + ceil(9/4)*1 + ceil(9/6)*2 = 3+3+4 = 10
       3 + ceil(10/4)*1 + ceil(10/6)*2 = 3+3+4 = 10  (fixed) *)
  let responses =
    List.map (fun v -> (v.Rta.v_task.Rta.tk_name, v.Rta.v_response)) a.Rta.a_verdicts
  in
  Alcotest.(check (list (pair string (option int))))
    "hand-computed fixed points"
    [ ("t1", Some 1); ("t2", Some 3); ("t3", Some 10) ]
    responses;
  Alcotest.(check bool) "schedulable" true a.Rta.a_schedulable

let test_unschedulable_detected () =
  let overloaded =
    [ t ~name:"hog" ~wcet:5 ~period:8 ();
      t ~name:"victim" ~wcet:4 ~period:10 () ]
  in
  let a = Rta.analyze overloaded in
  Alcotest.(check bool) "not schedulable" false a.Rta.a_schedulable;
  (* the high-priority task itself is fine *)
  (match a.Rta.a_verdicts with
  | hog :: victim :: [] ->
      Alcotest.(check (option int)) "hog response" (Some 5) hog.Rta.v_response;
      Alcotest.(check (option int)) "victim misses" None victim.Rta.v_response
  | _ -> Alcotest.fail "two verdicts expected");
  Alcotest.(check bool) "overloaded utilization" true
    (a.Rta.a_utilization > 1.0)

let test_rate_monotonic_ordering () =
  let tasks =
    [ t ~name:"slow" ~wcet:1 ~period:100 ();
      t ~name:"fast" ~wcet:1 ~period:10 () ]
  in
  let a = Rta.analyze tasks in
  (match a.Rta.a_verdicts with
  | first :: _ ->
      Alcotest.(check string) "short period first" "fast"
        first.Rta.v_task.Rta.tk_name
  | [] -> Alcotest.fail "no verdicts");
  (* explicit priority order is preserved when rate_monotonic is off *)
  let b = Rta.analyze ~rate_monotonic:false tasks in
  match b.Rta.a_verdicts with
  | first :: _ ->
      Alcotest.(check string) "list order kept" "slow"
        first.Rta.v_task.Rta.tk_name
  | [] -> Alcotest.fail "no verdicts"

let test_validation () =
  Alcotest.check_raises "empty set"
    (Invalid_argument "Rta.analyze: empty task set") (fun () ->
      ignore (Rta.analyze []));
  Alcotest.check_raises "zero wcet"
    (Invalid_argument "Rta.analyze: bad has a non-positive parameter")
    (fun () -> ignore (Rta.analyze [ t ~name:"bad" ~wcet:0 ~period:5 () ]));
  Alcotest.check_raises "D > T"
    (Invalid_argument
       "Rta.analyze: late has D > T (only constrained deadlines are supported)")
    (fun () ->
      ignore (Rta.analyze [ t ~deadline:9 ~name:"late" ~wcet:1 ~period:5 () ]))

let test_liu_layland () =
  Alcotest.(check (float 1e-9)) "n=1" 1.0 (Rta.liu_layland_bound 1);
  Alcotest.(check (float 1e-4)) "n=2" 0.8284 (Rta.liu_layland_bound 2);
  Alcotest.(check bool) "decreasing toward ln 2" true
    (Rta.liu_layland_bound 100 > 0.693
    && Rta.liu_layland_bound 100 < Rta.liu_layland_bound 2)

(* random constrained task sets *)
let task_set_gen =
  let open QCheck.Gen in
  let task_gen i =
    let* period = int_range 10 1000 in
    let* wcet = int_range 1 (max 1 (period / 4)) in
    return (t ~name:(Printf.sprintf "t%d" i) ~wcet ~period ())
  in
  let* n = int_range 1 6 in
  let rec build i =
    if i >= n then return []
    else
      let* tk = task_gen i in
      let* rest = build (i + 1) in
      return (tk :: rest)
  in
  build 0

let task_set =
  QCheck.make
    ~print:(fun ts ->
      String.concat "; "
        (List.map
           (fun tk -> Printf.sprintf "%s C=%d T=%d" tk.Rta.tk_name tk.Rta.tk_wcet tk.Rta.tk_period)
           ts))
    task_set_gen

let props =
  [ prop "responses bound deadlines and dominate WCETs" task_set (fun ts ->
        let a = Rta.analyze ts in
        List.for_all
          (fun v ->
            match v.Rta.v_response with
            | Some r ->
                r >= v.Rta.v_task.Rta.tk_wcet && r <= v.Rta.v_task.Rta.tk_deadline
            | None -> true)
          a.Rta.a_verdicts);
    prop "utilization below Liu-Layland implies schedulable" task_set
      (fun ts ->
        let a = Rta.analyze ts in
        (not (a.Rta.a_utilization <= a.Rta.a_ll_bound)) || a.Rta.a_schedulable);
    prop "highest priority task always meets C = R" task_set (fun ts ->
        let a = Rta.analyze ts in
        match a.Rta.a_verdicts with
        | v :: _ -> v.Rta.v_response = Some v.Rta.v_task.Rta.tk_wcet
        | [] -> false);
    prop "inflating a WCET never shrinks responses" task_set (fun ts ->
        let a = Rta.analyze ts in
        let inflated =
          match ts with
          | first :: rest -> { first with Rta.tk_wcet = first.Rta.tk_wcet } :: rest
          | [] -> []
        in
        (* inflate the shortest-period task by 1 where it stays valid *)
        let inflated =
          List.map
            (fun tk ->
              if tk.Rta.tk_wcet + 1 <= tk.Rta.tk_deadline then
                { tk with Rta.tk_wcet = tk.Rta.tk_wcet + 1 }
              else tk)
            inflated
        in
        let b = Rta.analyze inflated in
        List.for_all2
          (fun va vb ->
            match (va.Rta.v_response, vb.Rta.v_response) with
            | Some ra, Some rb -> rb >= ra
            | _, None -> true
            | None, Some _ -> false)
          a.Rta.a_verdicts b.Rta.a_verdicts) ]

(* the QTA-to-RTA bridge *)
let test_of_program () =
  let p =
    S4e_asm.Assembler.assemble_exn {|
_start:
  ebreak
task_fast:
  li   a0, 0
  li   a1, 4
tf_loop:
  addi a0, a0, 1
  blt  a0, a1, tf_loop
  mret
task_slow:
  li   a0, 0
  li   a1, 40
ts_loop:
  addi a0, a0, 1
  blt  a0, a1, ts_loop
  mret
|}
  in
  match
    Rta.of_program p ~tasks:[ ("task_fast", 400); ("task_slow", 4000) ]
  with
  | Error m -> Alcotest.failf "bridge failed: %s" m
  | Ok tasks ->
      let a = Rta.analyze tasks in
      Alcotest.(check bool) "bridge schedulable" true a.Rta.a_schedulable;
      List.iter
        (fun tk ->
          Alcotest.(check bool)
            (tk.Rta.tk_name ^ " has analyzer-derived wcet")
            true (tk.Rta.tk_wcet > 0))
        tasks;
      (* the slow task runs ten times the iterations: its bound must
         be substantially larger *)
      (match tasks with
      | [ fast; slow ] ->
          Alcotest.(check bool) "slow >> fast" true
            (slow.Rta.tk_wcet > 3 * fast.Rta.tk_wcet)
      | _ -> Alcotest.fail "two tasks");
      ()

let test_of_program_missing_symbol () =
  let p = S4e_asm.Assembler.assemble_exn "_start:\n  ebreak\n" in
  match Rta.of_program p ~tasks:[ ("nope", 100) ] with
  | Error m ->
      Alcotest.(check bool) "mentions the symbol" true
        (String.length m > 0)
  | Ok _ -> Alcotest.fail "missing symbol must error"

let () =
  Alcotest.run "rtos"
    [ ( "rta",
        [ Alcotest.test_case "textbook responses" `Quick
            test_textbook_responses;
          Alcotest.test_case "unschedulable detected" `Quick
            test_unschedulable_detected;
          Alcotest.test_case "rate-monotonic ordering" `Quick
            test_rate_monotonic_ordering;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "liu-layland" `Quick test_liu_layland ] );
      ("properties", props);
      ( "wcet-bridge",
        [ Alcotest.test_case "of_program" `Quick test_of_program;
          Alcotest.test_case "missing symbol" `Quick
            test_of_program_missing_symbol ] ) ]
