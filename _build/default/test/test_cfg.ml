(* CFG reconstruction, dominators, loops, and call-graph tests —
   including the structural invariants promised in cfg.mli. *)

module Cfg = S4e_cfg.Cfg
module Dom = S4e_cfg.Dominators
module Loops = S4e_cfg.Loops
module Callgraph = S4e_cfg.Callgraph

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:60 gen f)

let cfg_of_asm src =
  let p = S4e_asm.Assembler.assemble_exn src in
  let decode = Cfg.decoder_of_program p in
  (p, Cfg.build ~decode ~entry:p.S4e_asm.Program.entry)

let diamond_src = {|
_start:
  li   a0, 5
  beqz a0, else_arm
  addi a1, a1, 1
  j    join
else_arm:
  addi a1, a1, 2
join:
  ebreak
|}

let loop_src = {|
_start:
  li   a0, 0
  li   a1, 10
head:
  addi a0, a0, 1
  blt  a0, a1, head
  ebreak
|}

let nested_loop_src = {|
_start:
  li   s0, 0
  li   s1, 4
outer:
  li   s2, 0
  li   s3, 3
inner:
  addi s2, s2, 1
  blt  s2, s3, inner
  addi s0, s0, 1
  blt  s0, s1, outer
  ebreak
|}

let call_src = {|
_start:
  call f
  call g
  ebreak
f:
  call g
  ret
g:
  ret
|}

let test_diamond_shape () =
  let _, g = cfg_of_asm diamond_src in
  Alcotest.(check int) "blocks" 4 (Cfg.block_count g);
  Alcotest.(check int) "edges" 4 (Cfg.edge_count g);
  Alcotest.(check int) "entry succs" 2 (List.length g.Cfg.succs.(g.Cfg.entry))

let test_terminators () =
  let _, g = cfg_of_asm diamond_src in
  let kinds =
    Array.to_list g.Cfg.blocks
    |> List.map (fun b ->
           match b.Cfg.terminator with
           | Cfg.T_branch _ -> "branch"
           | Cfg.T_goto _ -> "goto"
           | Cfg.T_call _ -> "call"
           | Cfg.T_ret -> "ret"
           | Cfg.T_indirect -> "indirect"
           | Cfg.T_halt -> "halt")
  in
  Alcotest.(check (list string)) "kinds" [ "branch"; "goto"; "goto"; "halt" ]
    kinds

let test_dominators_diamond () =
  let _, g = cfg_of_asm diamond_src in
  let dom = Dom.compute g in
  (* entry dominates everything *)
  Array.iter
    (fun (b : Cfg.block) ->
      Alcotest.(check bool)
        (Printf.sprintf "entry dom %d" b.Cfg.id)
        true
        (Dom.dominates dom g.Cfg.entry b.Cfg.id))
    g.Cfg.blocks;
  (* neither arm dominates the join *)
  let join = 3 in
  Alcotest.(check bool) "then !dom join" false (Dom.dominates dom 1 join);
  Alcotest.(check bool) "else !dom join" false (Dom.dominates dom 2 join);
  Alcotest.(check int) "join idom is entry" g.Cfg.entry dom.Dom.idom.(join)

let test_loop_detection () =
  let _, g = cfg_of_asm loop_src in
  let dom = Dom.compute g in
  let loops = Loops.compute g dom in
  Alcotest.(check int) "one loop" 1 (Array.length loops.Loops.loops);
  let l = loops.Loops.loops.(0) in
  Alcotest.(check (list int)) "body is header only" [ l.Loops.header ]
    l.Loops.body;
  Alcotest.(check int) "depth" 1 l.Loops.depth;
  Alcotest.(check int) "one exit" 1 (List.length l.Loops.exits);
  Alcotest.(check bool) "reducible" true (Loops.reducible g dom)

let test_nested_loops () =
  let _, g = cfg_of_asm nested_loop_src in
  let dom = Dom.compute g in
  let loops = Loops.compute g dom in
  Alcotest.(check int) "two loops" 2 (Array.length loops.Loops.loops);
  let depths =
    Array.to_list loops.Loops.loops
    |> List.map (fun l -> l.Loops.depth)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "nesting depths" [ 1; 2 ] depths;
  let inner =
    Array.to_list loops.Loops.loops |> List.find (fun l -> l.Loops.depth = 2)
  in
  let outer =
    Array.to_list loops.Loops.loops |> List.find (fun l -> l.Loops.depth = 1)
  in
  Alcotest.(check (option int)) "inner parent" (Some 0)
    (Option.map
       (fun p -> if loops.Loops.loops.(p) == outer then 0 else 1)
       inner.Loops.parent);
  Alcotest.(check bool) "inner body inside outer" true
    (List.for_all (fun b -> List.mem b outer.Loops.body) inner.Loops.body)

let test_callgraph () =
  let p, _ = cfg_of_asm call_src in
  let decode = Cfg.decoder_of_program p in
  let cg = Callgraph.build ~decode ~entry:p.S4e_asm.Program.entry in
  Alcotest.(check int) "three functions" 3
    (List.length cg.Callgraph.functions);
  Alcotest.(check bool) "not recursive" false (Callgraph.is_recursive cg);
  let order = Callgraph.topological cg in
  let f = Option.get (S4e_asm.Program.symbol p "f") in
  let g = Option.get (S4e_asm.Program.symbol p "g") in
  let pos x =
    let rec go i = function
      | [] -> -1
      | y :: rest -> if x = y then i else go (i + 1) rest
    in
    go 0 order
  in
  Alcotest.(check bool) "g before f" true (pos g < pos f);
  Alcotest.(check bool) "f before entry" true
    (pos f < pos p.S4e_asm.Program.entry)

let test_recursion_detected () =
  let p, _ = cfg_of_asm {|
_start:
  call f
  ebreak
f:
  call f
  ret
|} in
  let decode = Cfg.decoder_of_program p in
  let cg = Callgraph.build ~decode ~entry:p.S4e_asm.Program.entry in
  Alcotest.(check bool) "recursive" true (Callgraph.is_recursive cg)

let test_indirect_jump () =
  let _, g = cfg_of_asm {|
_start:
  la   a0, _start
  jalr zero, 0(a0)
|} in
  let has_indirect =
    Array.exists (fun b -> b.Cfg.terminator = Cfg.T_indirect) g.Cfg.blocks
  in
  Alcotest.(check bool) "indirect terminator" true has_indirect

(* ---------------- static stats (ANALISA) ---------------- *)

module Stats = S4e_cfg.Static_stats

let test_static_stats_directed () =
  let p, _ = cfg_of_asm {|
_start:
  li   a0, 1
  mul  a1, a0, a0
  lw   a2, 0(sp)
  sw   a2, 4(sp)
  andn a3, a1, a2
  beq  a0, a1, out
  nop
out:
  ebreak
|} in
  let s = Stats.analyze p in
  Alcotest.(check int) "eight instructions" 8 s.Stats.total;
  Alcotest.(check int) "one load" 1 s.Stats.loads;
  Alcotest.(check int) "one store" 1 s.Stats.stores;
  Alcotest.(check (option int)) "mul counted" (Some 1)
    (List.assoc_opt "mul" s.Stats.by_mnemonic);
  let mods = Stats.required_modules s in
  Alcotest.(check bool) "needs I" true (List.mem S4e_isa.Isa_module.I mods);
  Alcotest.(check bool) "needs M" true (List.mem S4e_isa.Isa_module.M mods);
  Alcotest.(check bool) "needs B" true (List.mem S4e_isa.Isa_module.B mods);
  Alcotest.(check bool) "does not need F" false
    (List.mem S4e_isa.Isa_module.F mods);
  Alcotest.(check bool) "x20 unused" true (List.mem 20 (Stats.unused_gprs s))

let test_static_stats_compressed () =
  let p =
    S4e_torture.Torture.generate
      { S4e_torture.Torture.default_config with seed = 8; compress = true }
  in
  let s = Stats.analyze p in
  Alcotest.(check bool) "compressed counted" true (s.Stats.compressed > 0);
  Alcotest.(check bool) "C required" true
    (List.mem S4e_isa.Isa_module.C (Stats.required_modules s))

let stats_seed_gen =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "seed %d" seed)
    QCheck.Gen.(int_bound 10_000)

let static_stats_props =
  [ prop "static totals bound dynamic mnemonics" stats_seed_gen (fun seed ->
        (* every mnemonic the emulator executes must exist statically *)
        let p =
          S4e_torture.Torture.generate
            { S4e_torture.Torture.default_config with seed; segments = 8 }
        in
        let s = Stats.analyze p in
        let m = S4e_cpu.Machine.create () in
        let seen = Hashtbl.create 32 in
        let _ =
          S4e_cpu.Hooks.on_insn m.S4e_cpu.Machine.hooks (fun _ i ->
              Hashtbl.replace seen (S4e_isa.Instr.mnemonic i) ())
        in
        S4e_asm.Program.load_machine p m;
        let _ = S4e_cpu.Machine.run m ~fuel:100_000 in
        Hashtbl.fold
          (fun name () acc ->
            acc && List.mem_assoc name s.Stats.by_mnemonic)
          seen true);
    prop "histogram sums to total" stats_seed_gen (fun seed ->
        let p =
          S4e_torture.Torture.generate
            { S4e_torture.Torture.default_config with seed; segments = 8 }
        in
        let s = Stats.analyze p in
        List.fold_left (fun acc (_, n) -> acc + n) 0 s.Stats.by_mnemonic
        = s.Stats.total
        && List.fold_left (fun acc (_, n) -> acc + n) 0 s.Stats.by_module
           = s.Stats.total) ]

(* ---------------- invariants over random programs ---------------- *)

let torture_cfg_gen =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "seed %d" seed)
    QCheck.Gen.(int_bound 10_000)

let build_torture seed =
  let p =
    S4e_torture.Torture.generate
      { S4e_torture.Torture.default_config with seed; segments = 12 }
  in
  let decode = Cfg.decoder_of_program p in
  Cfg.build ~decode ~entry:p.S4e_asm.Program.entry

let invariant_props =
  [ prop "blocks partition the instructions" torture_cfg_gen (fun seed ->
        let g = build_torture seed in
        let seen = Hashtbl.create 64 in
        Array.for_all
          (fun (b : Cfg.block) ->
            Array.for_all
              (fun (pc, _, _) ->
                if Hashtbl.mem seen pc then false
                else begin
                  Hashtbl.replace seen pc ();
                  true
                end)
              b.Cfg.instrs)
          g.Cfg.blocks);
    prop "edges target block starts" torture_cfg_gen (fun seed ->
        let g = build_torture seed in
        Array.for_all
          (fun succs ->
            List.for_all (fun s -> s >= 0 && s < Array.length g.Cfg.blocks)
              succs)
          g.Cfg.succs);
    prop "preds mirror succs" torture_cfg_gen (fun seed ->
        let g = build_torture seed in
        let ok = ref true in
        Array.iteri
          (fun v succs ->
            List.iter
              (fun s -> if not (List.mem v g.Cfg.preds.(s)) then ok := false)
              succs)
          g.Cfg.succs;
        !ok);
    prop "entry dominates reachable blocks" torture_cfg_gen (fun seed ->
        let g = build_torture seed in
        let dom = Dom.compute g in
        Array.for_all
          (fun (b : Cfg.block) ->
            (not (Dom.reachable dom b.Cfg.id))
            || Dom.dominates dom g.Cfg.entry b.Cfg.id)
          g.Cfg.blocks);
    prop "torture programs are reducible" torture_cfg_gen (fun seed ->
        let g = build_torture seed in
        let dom = Dom.compute g in
        Loops.reducible g dom);
    prop "loop bodies contain their latches" torture_cfg_gen (fun seed ->
        let g = build_torture seed in
        let dom = Dom.compute g in
        let loops = Loops.compute g dom in
        Array.for_all
          (fun (l : Loops.loop) ->
            List.for_all
              (fun (latch, header) ->
                List.mem latch l.Loops.body && header = l.Loops.header)
              l.Loops.back_edges)
          loops.Loops.loops);
    prop "dominator of v also dominates idom(v) chain" torture_cfg_gen
      (fun seed ->
        let g = build_torture seed in
        let dom = Dom.compute g in
        Array.for_all
          (fun (b : Cfg.block) ->
            let v = b.Cfg.id in
            (not (Dom.reachable dom v))
            || v = g.Cfg.entry
            || Dom.dominates dom dom.Dom.idom.(v) v)
          g.Cfg.blocks) ]

let () =
  Alcotest.run "cfg"
    [ ( "structure",
        [ Alcotest.test_case "diamond shape" `Quick test_diamond_shape;
          Alcotest.test_case "terminators" `Quick test_terminators;
          Alcotest.test_case "dominators diamond" `Quick
            test_dominators_diamond;
          Alcotest.test_case "loop detection" `Quick test_loop_detection;
          Alcotest.test_case "nested loops" `Quick test_nested_loops;
          Alcotest.test_case "callgraph" `Quick test_callgraph;
          Alcotest.test_case "recursion detected" `Quick
            test_recursion_detected;
          Alcotest.test_case "indirect jump" `Quick test_indirect_jump ] );
      ( "static-stats",
        Alcotest.test_case "directed" `Quick test_static_stats_directed
        :: Alcotest.test_case "compressed" `Quick test_static_stats_compressed
        :: static_stats_props );
      ("invariants", invariant_props) ]
