test/test_fault.ml: Alcotest Array Hashtbl List Option Printf QCheck QCheck_alcotest S4e_asm S4e_coverage S4e_cpu S4e_fault S4e_mem
