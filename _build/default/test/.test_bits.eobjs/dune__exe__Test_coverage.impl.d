test/test_coverage.ml: Alcotest Array Csr Hashtbl Isa_module List S4e_asm S4e_core S4e_coverage S4e_cpu S4e_isa S4e_torture
