test/test_integration.ml: Alcotest Filename List Option S4e_asm S4e_core S4e_coverage S4e_cpu S4e_fault S4e_soc S4e_torture S4e_wcet Sys
