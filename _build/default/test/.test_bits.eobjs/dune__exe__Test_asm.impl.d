test/test_asm.ml: Alcotest Bytes Decode Format Gen Instr List Printf QCheck QCheck_alcotest S4e_asm S4e_bits S4e_isa S4e_mem S4e_torture String
