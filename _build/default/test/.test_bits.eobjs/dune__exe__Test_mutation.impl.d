test/test_mutation.ml: Alcotest Decode Encode Gen Instr List Option QCheck QCheck_alcotest S4e_asm S4e_cpu S4e_isa S4e_mem S4e_mutation
