test/test_cfg.ml: Alcotest Array Hashtbl List Option Printf QCheck QCheck_alcotest S4e_asm S4e_cfg S4e_cpu S4e_isa S4e_torture
