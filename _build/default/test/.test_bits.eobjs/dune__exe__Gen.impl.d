test/gen.ml: Instr QCheck S4e_isa
