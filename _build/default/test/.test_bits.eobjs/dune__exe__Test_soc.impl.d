test/test_soc.ml: Alcotest Buffer Char List S4e_mem S4e_soc String
