test/test_bits.ml: Alcotest Int64 QCheck QCheck_alcotest S4e_bits
