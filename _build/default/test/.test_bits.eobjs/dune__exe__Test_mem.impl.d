test/test_mem.ml: Alcotest Char Gen List QCheck QCheck_alcotest S4e_mem String
