test/test_wcet.ml: Alcotest Array List Option Printf QCheck QCheck_alcotest S4e_asm S4e_cfg S4e_core S4e_cpu S4e_torture S4e_wcet
