test/test_mutation.mli:
