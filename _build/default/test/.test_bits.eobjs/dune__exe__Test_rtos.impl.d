test/test_rtos.ml: Alcotest List Printf QCheck QCheck_alcotest S4e_asm S4e_rtos String
