test/test_bmi.mli:
