test/test_isa.ml: Alcotest Compressed Csr Decode Decodetree Encode Fields Gen Instr Isa_module List Option Printf QCheck QCheck_alcotest Reg S4e_isa String
