test/test_bmi.ml: Alcotest List Option QCheck QCheck_alcotest Random S4e_bits S4e_bmi S4e_core S4e_wcet
