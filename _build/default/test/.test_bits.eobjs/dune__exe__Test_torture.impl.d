test/test_torture.ml: Alcotest Hashtbl Instr Isa_module List QCheck QCheck_alcotest S4e_asm S4e_cpu S4e_isa S4e_torture
