test/test_cpu.ml: Alcotest Array Csr Float Gen Instr Int32 Isa_module List Printf QCheck QCheck_alcotest S4e_asm S4e_bits S4e_cpu S4e_isa S4e_mem S4e_torture
