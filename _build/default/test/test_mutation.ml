(* Mutation-testing framework tests (the XEMU companion). *)

open S4e_isa
module Mutop = S4e_mutation.Mutop
module Mutant = S4e_mutation.Mutant
module Score = S4e_mutation.Score

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:300 gen f)

(* A small input-dependent program: reads 2 bytes from the UART,
   computes a keyed comparison, answers over the UART and exits with a
   classification. *)
let target_src = {|
  .equ UART, 0x10000000
  .equ EXIT, 0x00100000
_start:
  li   s0, UART
  lbu  a0, 0(s0)          # first byte
  lbu  a1, 0(s0)          # second byte
  slli a2, a0, 3
  add  a2, a2, a1
  addi a2, a2, -100
  bltz a2, low
  li   a3, 'H'
  sb   a3, 0(s0)
  li   a4, 1
  j    finish
low:
  li   a3, 'L'
  sb   a3, 0(s0)
  li   a4, 0
finish:
  li   t1, EXIT
  sw   a4, 0(t1)
  ebreak
|}

let target () = S4e_asm.Assembler.assemble_exn target_src

(* ---------------- operators ---------------- *)

let test_operator_tables () =
  let add = Instr.Op (ADD, 10, 11, 12) in
  Alcotest.(check int) "AOR of add" 2 (List.length (Mutop.mutations Mutop.Aor add));
  let beq = Instr.Branch (BEQ, 10, 11, 8) in
  (match Mutop.mutations Mutop.Ror beq with
  | [ Instr.Branch (BNE, 10, 11, 8) ] -> ()
  | _ -> Alcotest.fail "ROR of beq should be bne");
  let addi = Instr.Op_imm (ADDI, 10, 11, 5) in
  Alcotest.(check int) "COR of addi" 3 (List.length (Mutop.mutations Mutop.Cor addi));
  (* SDL never produces the nop from a nop *)
  Alcotest.(check (list string)) "SDL of nop" []
    (List.map Instr.to_string
       (Mutop.mutations Mutop.Sdl (Instr.Op_imm (ADDI, 0, 0, 0))));
  (* control flow is never deleted *)
  Alcotest.(check (list string)) "SDL of jal" []
    (List.map Instr.to_string (Mutop.mutations Mutop.Sdl (Instr.Jal (1, 8))))

let mutation_props =
  [ prop "mutations never include the original" Gen.instr (fun i ->
        List.for_all
          (fun op ->
            List.for_all
              (fun m -> not (Instr.equal m i))
              (Mutop.mutations op i))
          Mutop.all);
    prop "mutations stay encodable" Gen.instr (fun i ->
        List.for_all
          (fun op ->
            List.for_all
              (fun m ->
                match Decode.decode (Encode.encode m) with
                | Some m' -> Instr.equal m m'
                | None -> false)
              (Mutop.mutations op i))
          Mutop.all);
    prop "mutations preserve byte width" Gen.instr (fun i ->
        (* all our encodings are 32-bit; re-encoding must stay a valid
           non-compressed word *)
        List.for_all
          (fun op ->
            List.for_all
              (fun m -> Encode.encode m land 0x3 = 0x3)
              (Mutop.mutations op i))
          Mutop.all) ]

(* ---------------- enumeration ---------------- *)

let test_generation () =
  let p = target () in
  let mutants = Mutant.generate p in
  Alcotest.(check bool) "site list nonempty" true (List.length mutants > 20);
  (* ids dense, addresses within the code range *)
  let lo, hi = Option.get (S4e_asm.Program.code_range p) in
  List.iteri
    (fun i m ->
      Alcotest.(check int) "dense ids" i m.Mutant.m_id;
      Alcotest.(check bool) "in range" true
        (m.Mutant.m_pc >= lo && m.Mutant.m_pc < hi))
    mutants

let test_generation_operator_filter () =
  let p = target () in
  let only_ror = Mutant.generate ~operators:[ Mutop.Ror ] p in
  Alcotest.(check bool) "only ROR" true
    (List.for_all (fun m -> m.Mutant.m_operator = Mutop.Ror) only_ror);
  (* exactly one branch (bltz) in the target, with two ROR partners *)
  Alcotest.(check int) "branch mutants" 2 (List.length only_ror)

let test_coverage_guidance () =
  let p = target () in
  let all = Mutant.generate p in
  (* restrict to the first instruction only *)
  let lo, _ = Option.get (S4e_asm.Program.code_range p) in
  let one = Mutant.generate ~covered:(fun pc -> pc = lo) p in
  Alcotest.(check bool) "filtered smaller" true
    (List.length one < List.length all);
  Alcotest.(check bool) "all at site" true
    (List.for_all (fun m -> m.Mutant.m_pc = lo) one)

let test_apply_patches_one_word () =
  let p = target () in
  let m = S4e_cpu.Machine.create () in
  S4e_asm.Program.load_machine p m;
  let mutants = Mutant.generate p in
  let mu = List.hd mutants in
  let before =
    S4e_mem.Sparse_mem.read32 (S4e_mem.Bus.ram m.S4e_cpu.Machine.bus) mu.Mutant.m_pc
  in
  Mutant.apply mu m;
  let after =
    S4e_mem.Sparse_mem.read32 (S4e_mem.Bus.ram m.S4e_cpu.Machine.bus) mu.Mutant.m_pc
  in
  Alcotest.(check bool) "word changed" true (before <> after);
  Alcotest.(check int) "is the mutated encoding"
    (Encode.encode mu.Mutant.m_mutated) after

(* ---------------- scoring ---------------- *)

let tests_weak = [ Score.test ~name:"t-low" "\x01\x01" ]

let tests_strong =
  [ Score.test ~name:"t-low" "\x01\x01";
    Score.test ~name:"t-high" "\x20\x10";
    Score.test ~name:"t-boundary" "\x0c\x04" ]

let test_scores_improve_with_tests () =
  let p = target () in
  let mutants = Mutant.generate p in
  let weak = Score.summarize (Score.run p ~tests:tests_weak ~mutants) in
  let strong = Score.summarize (Score.run p ~tests:tests_strong ~mutants) in
  Alcotest.(check bool) "weak kills some" true (weak.Score.s_killed > 0);
  Alcotest.(check bool) "strong kills more" true
    (strong.Score.s_killed > weak.Score.s_killed);
  Alcotest.(check bool) "score in range" true
    (strong.Score.s_score > 0.0 && strong.Score.s_score <= 1.0);
  Alcotest.(check int) "partition" strong.Score.s_total
    (strong.Score.s_killed + strong.Score.s_survived);
  (* per-operator counts add up to the totals *)
  let op_total =
    List.fold_left (fun acc (_, _, t) -> acc + t) 0 strong.Score.s_per_operator
  in
  Alcotest.(check int) "per-operator total" strong.Score.s_total op_total

let test_survivors_reported () =
  let p = target () in
  let mutants = Mutant.generate p in
  let results = Score.run p ~tests:tests_weak ~mutants in
  let survivors = Score.survivors results in
  Alcotest.(check int) "killed + survivors = total" (List.length mutants)
    (List.length survivors
    + (Score.summarize results).Score.s_killed)

let test_deterministic_scoring () =
  let p = target () in
  let mutants = Mutant.generate ~operators:[ Mutop.Aor; Mutop.Ror ] p in
  let r1 = Score.run p ~tests:tests_strong ~mutants in
  let r2 = Score.run p ~tests:tests_strong ~mutants in
  Alcotest.(check bool) "same verdicts" true (r1 = r2)

let () =
  Alcotest.run "mutation"
    [ ( "operators",
        Alcotest.test_case "tables" `Quick test_operator_tables
        :: mutation_props );
      ( "enumeration",
        [ Alcotest.test_case "generation" `Quick test_generation;
          Alcotest.test_case "operator filter" `Quick
            test_generation_operator_filter;
          Alcotest.test_case "coverage guidance" `Quick test_coverage_guidance;
          Alcotest.test_case "apply" `Quick test_apply_patches_one_word ] );
      ( "scoring",
        [ Alcotest.test_case "more tests, higher score" `Quick
            test_scores_improve_with_tests;
          Alcotest.test_case "survivors" `Quick test_survivors_reported;
          Alcotest.test_case "deterministic" `Quick test_deterministic_scoring ] ) ]
