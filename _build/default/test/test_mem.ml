(* Sparse memory and bus tests. *)

module Mem = S4e_mem.Sparse_mem
module Bus = S4e_mem.Bus

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:300 gen f)

let addr_gen = QCheck.map (fun i -> i land 0xFFFF_FFFF) QCheck.int

let test_rw_basic () =
  let m = Mem.create () in
  Alcotest.(check int) "untouched reads zero" 0 (Mem.read32 m 0x8000_0000);
  Mem.write32 m 0x8000_0000 0xDEADBEEF;
  Alcotest.(check int) "read32" 0xDEADBEEF (Mem.read32 m 0x8000_0000);
  Alcotest.(check int) "read16 low" 0xBEEF (Mem.read16 m 0x8000_0000);
  Alcotest.(check int) "read16 high" 0xDEAD (Mem.read16 m 0x8000_0002);
  Alcotest.(check int) "read8" 0xEF (Mem.read8 m 0x8000_0000);
  Alcotest.(check int) "read8 top" 0xDE (Mem.read8 m 0x8000_0003)

let test_page_crossing () =
  let m = Mem.create () in
  let edge = 0x8000_0000 + Mem.page_size - 2 in
  Mem.write32 m edge 0x11223344;
  Alcotest.(check int) "cross-page read32" 0x11223344 (Mem.read32 m edge);
  Alcotest.(check int) "upper half next page" 0x1122 (Mem.read16 m (edge + 2));
  Mem.write16 m (0x8000_0000 + Mem.page_size - 1) 0xAABB;
  Alcotest.(check int) "cross-page read16" 0xAABB
    (Mem.read16 m (0x8000_0000 + Mem.page_size - 1))

let test_bulk () =
  let m = Mem.create () in
  Mem.load_bytes m 0x1000 "hello world";
  Alcotest.(check string) "dump" "hello world" (Mem.dump_bytes m 0x1000 11);
  Alcotest.(check int) "byte of string" (Char.code 'w') (Mem.read8 m 0x1006)

let test_copy_isolation () =
  let m = Mem.create () in
  Mem.write32 m 0x100 42;
  let c = Mem.copy m in
  Mem.write32 m 0x100 7;
  Alcotest.(check int) "copy unaffected" 42 (Mem.read32 c 0x100);
  Alcotest.(check int) "original updated" 7 (Mem.read32 m 0x100)

let test_clear () =
  let m = Mem.create () in
  Mem.write32 m 0x100 1;
  Alcotest.(check bool) "touched" true (Mem.touched_pages m > 0);
  Mem.clear m;
  Alcotest.(check int) "cleared" 0 (Mem.touched_pages m);
  Alcotest.(check int) "reads zero" 0 (Mem.read32 m 0x100)

(* ---------------- bus ---------------- *)

let dummy_device name base =
  let stored = ref 0 in
  ( { Bus.dev_name = name; dev_base = base; dev_len = 0x10;
      dev_read = (fun _ _ -> !stored);
      dev_write = (fun _ _ v -> stored := v) },
    stored )

let test_bus_routing () =
  let bus = Bus.create () in
  let dev, stored = dummy_device "dev" 0x4000 in
  Bus.attach bus dev;
  Bus.write32 bus 0x4000 99;
  Alcotest.(check int) "device write" 99 !stored;
  Alcotest.(check int) "device read" 99 (Bus.read32 bus 0x4004);
  Bus.write32 bus 0x8000 123;
  Alcotest.(check int) "ram fallthrough" 123 (Bus.read32 bus 0x8000);
  Alcotest.(check int) "ram direct" 123 (Mem.read32 (Bus.ram bus) 0x8000)

let test_bus_overlap_rejected () =
  let bus = Bus.create () in
  let d1, _ = dummy_device "one" 0x4000 in
  let d2, _ = dummy_device "two" 0x4008 in
  Bus.attach bus d1;
  Alcotest.check_raises "overlap"
    (Invalid_argument "Bus.attach: two overlaps one") (fun () ->
      Bus.attach bus d2)

let test_bus_watcher () =
  let bus = Bus.create () in
  let dev, _ = dummy_device "dev" 0x4000 in
  Bus.attach bus dev;
  let seen = ref [] in
  Bus.set_io_watcher bus (Some (fun a -> seen := a :: !seen));
  Bus.write8 bus 0x4002 0xAB;
  let _ = Bus.read16 bus 0x4000 in
  (* RAM traffic must not reach the IO watcher *)
  Bus.write32 bus 0x9000 1;
  Alcotest.(check int) "two device events" 2 (List.length !seen);
  (match !seen with
  | [ rd; wr ] ->
      Alcotest.(check bool) "write flag" true wr.Bus.io_is_write;
      Alcotest.(check bool) "read flag" false rd.Bus.io_is_write;
      Alcotest.(check string) "device name" "dev" wr.Bus.io_device;
      Alcotest.(check int) "address" 0x4002 wr.Bus.io_addr
  | _ -> Alcotest.fail "expected exactly two accesses");
  Bus.set_io_watcher bus None;
  Bus.write8 bus 0x4002 1;
  Alcotest.(check int) "watcher removed" 2 (List.length !seen)

let test_fetch_bypasses_devices () =
  let bus = Bus.create () in
  let dev, _ = dummy_device "dev" 0x4000 in
  Bus.attach bus dev;
  Bus.write32 bus 0x4000 77;
  (* fetch reads RAM underneath the device, which is still zero *)
  Alcotest.(check int) "fetch32 bypass" 0 (Bus.fetch32 bus 0x4000)

let test_invalid_size () =
  let bus = Bus.create () in
  Alcotest.check_raises "read size"
    (Invalid_argument "Bus.read: size must be 1, 2 or 4") (fun () ->
      ignore (Bus.read bus 0 3));
  Alcotest.check_raises "write size"
    (Invalid_argument "Bus.write: size must be 1, 2 or 4") (fun () ->
      Bus.write bus 0 3 0)

let props =
  [ prop "read32 after write32 roundtrips"
      (QCheck.pair addr_gen Gen.word32)
      (fun (a, v) ->
        let m = Mem.create () in
        Mem.write32 m a v;
        Mem.read32 m a = v);
    prop "byte decomposition of words" (QCheck.pair addr_gen Gen.word32)
      (fun (a, v) ->
        let m = Mem.create () in
        Mem.write32 m a v;
        Mem.read8 m a = v land 0xFF
        && Mem.read8 m (a + 1) = (v lsr 8) land 0xFF
        && Mem.read8 m (a + 2) = (v lsr 16) land 0xFF
        && Mem.read8 m (a + 3) = (v lsr 24) land 0xFF);
    prop "little-endian halves" (QCheck.pair addr_gen Gen.word32)
      (fun (a, v) ->
        let m = Mem.create () in
        Mem.write32 m a v;
        Mem.read16 m a lor (Mem.read16 m (a + 2) lsl 16) = v);
    prop "load/dump roundtrip" (QCheck.pair addr_gen QCheck.string)
      (fun (a, s) ->
        QCheck.assume (a + String.length s < 0xFFFF_FFFF);
        let m = Mem.create () in
        Mem.load_bytes m a s;
        Mem.dump_bytes m a (String.length s) = s) ]

let () =
  Alcotest.run "mem"
    [ ( "sparse",
        [ Alcotest.test_case "rw basic" `Quick test_rw_basic;
          Alcotest.test_case "page crossing" `Quick test_page_crossing;
          Alcotest.test_case "bulk" `Quick test_bulk;
          Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
          Alcotest.test_case "clear" `Quick test_clear ] );
      ( "bus",
        [ Alcotest.test_case "routing" `Quick test_bus_routing;
          Alcotest.test_case "overlap rejected" `Quick test_bus_overlap_rejected;
          Alcotest.test_case "watcher" `Quick test_bus_watcher;
          Alcotest.test_case "fetch bypasses devices" `Quick
            test_fetch_bypasses_devices;
          Alcotest.test_case "invalid size" `Quick test_invalid_size ] );
      ("properties", props) ]
