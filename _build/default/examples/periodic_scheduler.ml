(* A periodic real-time task on the virtual prototype: timer interrupts,
   observed activation jitter, and a schedulability argument from the
   static WCET of the handler.

   The target program arms the CLINT timer with a fixed period and
   sleeps in WFI; every interrupt runs a small filter task and re-arms
   the timer.  Host-side, a trap hook timestamps each activation; the
   WCET analyzer then bounds the handler in isolation, and the
   schedulability check is simply  handler WCET <= period.

   Run with: dune exec examples/periodic_scheduler.exe *)

let period = 400  (* cycles between activations *)
let activations = 20

let source = Printf.sprintf {|
  .equ CLINT,    0x02000000
  .equ MTIMECMP, 0x02004000
  .equ MTIME,    0x0200bff8
  .equ EXIT,     0x00100000
  .equ PERIOD,   %d
  .equ ROUNDS,   %d

_start:
  la   t0, tick_handler
  csrw mtvec, t0
  li   s10, 0             # activation counter
  # arm the first deadline
  li   t1, MTIME
  lw   t2, 0(t1)
  addi t2, t2, PERIOD
  li   t3, MTIMECMP
  sw   t2, 0(t3)
  sw   zero, 4(t3)
  # enable the machine timer interrupt
  li   t4, 0x80
  csrw mie, t4
  csrrsi zero, mstatus, 8
idle:
  wfi
  j    idle

# The periodic task: an 8-tap smoothing filter over the sample window,
# then re-arm the timer PERIOD ticks after the *previous* deadline.
tick_handler:
  la   a0, window
  li   a1, 0              # tap index
  li   a2, 8
  li   a3, 0              # accumulator
filter:
  slli a4, a1, 2
  add  a5, a0, a4
  lw   a6, 0(a5)
  add  a3, a3, a6
  addi a1, a1, 1
  blt  a1, a2, filter
  srai a3, a3, 3          # mean of 8
  la   a7, output
  sw   a3, 0(a7)
  # shift a new pseudo-sample in
  lw   t5, 28(a0)
  xor  t5, t5, a3
  andi t5, t5, 1023
  sw   t5, 0(a0)
  # re-arm: mtimecmp += PERIOD (drift-free periodic release)
  li   t1, MTIMECMP
  lw   t2, 0(t1)
  addi t2, t2, PERIOD
  sw   t2, 0(t1)
  # count activations; exit after ROUNDS
  addi s10, s10, 1
  li   t6, ROUNDS
  blt  s10, t6, tick_done
  la   a0, output
  lw   a0, 0(a0)
  li   t1, EXIT
  sw   a0, 0(t1)
tick_done:
  mret

  .data
window:
  .word 100, 220, 180, 90, 310, 240, 160, 200
output:
  .word 0
|} period activations

let () =
  let program = S4e_asm.Assembler.assemble_exn source in
  let m = S4e_cpu.Machine.create () in

  (* Host-side observer: timestamp every trap entry. *)
  let timestamps = ref [] in
  let _ =
    S4e_cpu.Hooks.on_trap m.S4e_cpu.Machine.hooks (fun _ _ -> ())
  in
  let _ =
    (* interrupts do not raise Trap.Exn; watch handler entries instead *)
    let handler = Option.get (S4e_asm.Program.symbol program "tick_handler") in
    S4e_cpu.Hooks.on_insn m.S4e_cpu.Machine.hooks (fun pc _ ->
        if pc = handler then
          (* platform time (the CLINT's mtime), not retired cycles: the
             hart sleeps in WFI between activations *)
          timestamps := S4e_soc.Clint.time m.S4e_cpu.Machine.clint :: !timestamps)
  in
  S4e_asm.Program.load_machine program m;
  let stop = S4e_cpu.Machine.run m ~fuel:1_000_000 in
  Format.printf "run: %a after %d instructions, %d cycles@."
    S4e_cpu.Machine.pp_stop_reason stop
    (S4e_cpu.Machine.instret m) (S4e_cpu.Machine.cycles m);

  let stamps = List.rev !timestamps in
  Format.printf "activations observed: %d (expected %d)@." (List.length stamps)
    activations;
  let rec deltas = function
    | a :: (b :: _ as rest) -> (b - a) :: deltas rest
    | [ _ ] | [] -> []
  in
  let ds = deltas stamps in
  (match ds with
  | [] -> ()
  | d :: _ ->
      let mn = List.fold_left min d ds and mx = List.fold_left max d ds in
      Format.printf "inter-activation period: min %d, max %d (nominal %d)@."
        mn mx period;
      Format.printf "release jitter: %d cycles@." (mx - mn));

  (* Schedulability: bound the handler in isolation. *)
  let handler_entry =
    Option.get (S4e_asm.Program.symbol program "tick_handler")
  in
  let handler_view = { program with S4e_asm.Program.entry = handler_entry } in
  match S4e_wcet.Analysis.analyze handler_view with
  | Error e ->
      Format.printf "handler analysis failed: %s@."
        (S4e_wcet.Analysis.describe_error e)
  | Ok r ->
      let wcet = r.S4e_wcet.Analysis.program_wcet in
      Format.printf "@.static WCET of the periodic task: %d cycles@." wcet;
      Format.printf "period: %d cycles -> utilization bound %.1f%%@." period
        (100.0 *. float_of_int wcet /. float_of_int period);
      if wcet <= period then
        Format.printf
          "the task provably completes before its next release.@."
      else
        Format.printf "cannot prove schedulability at this period.@."
