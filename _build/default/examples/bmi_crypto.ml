(* BMI software evaluation (PATMOS 2019 / experiment E6): cycle counts
   of cryptographic and bit-twiddling kernels with and without the
   bit-manipulation instructions.

   Both variants of a kernel compute the same checksum over the same
   seeded input; only the instruction selection differs.  The paper's
   claim — "a significant impact for time and power consuming
   cryptographic applications" — shows up as the speedup column.

   Run with: dune exec examples/bmi_crypto.exe *)

let sizes = [ 64; 256; 1024 ]

let () =
  Format.printf "%-10s" "kernel";
  List.iter (fun n -> Format.printf " | n=%-5d        " n) sizes;
  Format.printf "@.";
  Format.printf "%-10s" "";
  List.iter (fun _ -> Format.printf " | base    bmi  x ") sizes;
  Format.printf "@.";
  List.iter
    (fun k ->
      Format.printf "%-10s" k.S4e_bmi.Kernels.k_name;
      List.iter
        (fun n ->
          let base = S4e_bmi.Kernels.measure k S4e_bmi.Kernels.Base ~n ~seed:42 in
          let bmi = S4e_bmi.Kernels.measure k S4e_bmi.Kernels.Bmi ~n ~seed:42 in
          assert (base.S4e_bmi.Kernels.m_checksum = bmi.S4e_bmi.Kernels.m_checksum);
          Format.printf " | %-7d %-5d %.1f" base.S4e_bmi.Kernels.m_cycles
            bmi.S4e_bmi.Kernels.m_cycles
            (float_of_int base.S4e_bmi.Kernels.m_cycles
            /. float_of_int bmi.S4e_bmi.Kernels.m_cycles))
        sizes;
      Format.printf "@.")
    S4e_bmi.Kernels.all;
  Format.printf "@.every kernel pair was checked to produce identical checksums@."
