(* Quickstart: assemble a program, run it on the virtual prototype,
   inspect its output, and peek at a disassembly and its CFG.

   Run with: dune exec examples/quickstart.exe *)

let source = {|
  # Print a greeting over the UART and exit through the syscon.
  .equ UART, 0x10000000
  .equ EXIT, 0x00100000

_start:
  la   a1, message
  li   a2, UART
print_loop:
  lbu  a0, 0(a1)
  beqz a0, finished
  sb   a0, 0(a2)          # transmit one byte
  addi a1, a1, 1
  j    print_loop
finished:
  li   t0, 6              # compute a tiny result: 6! = 720
  li   a0, 1
fact_loop:
  mul  a0, a0, t0
  addi t0, t0, -1
  bgtz t0, fact_loop
  li   a3, EXIT
  sw   a0, 0(a3)          # exit with status 720
  ebreak

  .data
message:
  .asciz "Hello from the Scale4Edge virtual prototype!\n"
|}

let () =
  (* 1. Assemble. *)
  let program = S4e_asm.Assembler.assemble_exn source in
  Format.printf "assembled %d bytes, entry at 0x%08x@."
    (S4e_asm.Program.size program)
    program.S4e_asm.Program.entry;

  (* 2. Disassemble the first few instructions. *)
  Format.printf "@.first instructions:@.";
  List.iteri
    (fun i line ->
      if i < 5 then Format.printf "  %a@." S4e_asm.Disasm.pp_line line)
    (S4e_asm.Disasm.disassemble_program program);

  (* 3. Run on the default machine (RV32IMFC + Zicsr + BMI, TB cache on). *)
  let result = S4e_core.Flows.run program in
  Format.printf "@.uart says: %s" result.S4e_core.Flows.rr_uart;
  Format.printf "stopped: %a@." S4e_cpu.Machine.pp_stop_reason
    result.S4e_core.Flows.rr_stop;
  Format.printf "executed %d instructions in %d model cycles@."
    result.S4e_core.Flows.rr_instret result.S4e_core.Flows.rr_cycles;

  (* 4. Look at the reconstructed control-flow graph. *)
  let decode = S4e_cfg.Cfg.decoder_of_program program in
  let g = S4e_cfg.Cfg.build ~decode ~entry:program.S4e_asm.Program.entry in
  Format.printf "@.CFG: %d blocks, %d edges@." (S4e_cfg.Cfg.block_count g)
    (S4e_cfg.Cfg.edge_count g)
