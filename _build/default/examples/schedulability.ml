(* From WCET bounds to a schedulability proof — the full vertical flow.

   A small avionics-flavoured task set lives in one image: an attitude
   filter, a control law, and a telemetry CRC.  The example
     1. statically bounds each task with the WCET analyzer,
     2. cross-checks one bound against the QTA co-simulation,
     3. runs fixed-priority response-time analysis on the bounds,
     4. reports the margin to the first deadline miss.

   Run with: dune exec examples/schedulability.exe *)

let image = {|
_start:
  ebreak

attitude_filter:
  la   a0, samples
  li   a1, 0
  li   a2, 12
  li   a3, 0
af_loop:
  slli a4, a1, 2
  add  a5, a0, a4
  lw   a6, 0(a5)
  add  a3, a3, a6
  addi a1, a1, 1
  blt  a1, a2, af_loop
  srai a3, a3, 2
  mret

control_law:
  li   a0, 0
  li   a1, 0
  li   a2, 20
cl_loop:
  add  a1, a1, a0
  srai a3, a1, 3
  add  a0, a0, a3
  addi a0, a0, 1
  addi a2, a2, -1
  bgtz a2, cl_loop
  mret

telemetry_crc:
  li   s0, 0
  li   s1, 16
  li   a0, -1
  li   s3, 0xedb88320
  li   a4, 8
tc_byte:
  la   a1, samples
  add  a1, a1, s0
  lbu  a2, 0(a1)
  xor  a0, a0, a2
  li   s2, 0
tc_bit:
  andi a3, a0, 1
  srli a0, a0, 1
  beqz a3, tc_skip
  xor  a0, a0, s3
tc_skip:
  addi s2, s2, 1
  blt  s2, a4, tc_bit
  addi s0, s0, 1
  blt  s0, s1, tc_byte
  mret

  .data
samples:
  .word 310, 250, 180, 90, 410, 240, 160, 200, 120, 330, 280, 150
|}

let task_periods =
  [ ("attitude_filter", 900); ("control_law", 3000); ("telemetry_crc", 12000) ]

let () =
  let program = S4e_asm.Assembler.assemble_exn image in

  (* 1. static bounds per task *)
  (match S4e_rtos.Rta.of_program program ~tasks:task_periods with
  | Error m -> failwith m
  | Ok tasks ->
      Format.printf "== static WCET bounds ==@.";
      List.iter
        (fun tk ->
          Format.printf "  %-16s C = %4d cycles (period %d)@."
            tk.S4e_rtos.Rta.tk_name tk.S4e_rtos.Rta.tk_wcet
            tk.S4e_rtos.Rta.tk_period)
        tasks;

      (* 2. cross-check the filter's bound against QTA + dynamic run *)
      let filter_entry =
        Option.get (S4e_asm.Program.symbol program "attitude_filter")
      in
      let filter_view =
        { program with S4e_asm.Program.entry = filter_entry }
      in
      (match S4e_core.Flows.wcet_flow filter_view with
      | Ok r ->
          Format.printf
            "@.== QTA cross-check (attitude_filter) ==@.dynamic %d <= path \
             %d <= static %d@."
            r.S4e_core.Flows.wr_dynamic r.S4e_core.Flows.wr_path
            r.S4e_core.Flows.wr_static;
          assert (r.S4e_core.Flows.wr_dynamic <= r.S4e_core.Flows.wr_path);
          assert (r.S4e_core.Flows.wr_path <= r.S4e_core.Flows.wr_static)
      | Error e ->
          Format.printf "cross-check failed: %s@."
            (S4e_wcet.Analysis.describe_error e));

      (* 3. response-time analysis *)
      let analysis = S4e_rtos.Rta.analyze tasks in
      Format.printf "@.== response-time analysis ==@.%a" S4e_rtos.Rta.pp
        analysis;

      (* 4. margin: how far can the filter period shrink? *)
      let schedulable_at period =
        let tasks' =
          List.map
            (fun tk ->
              if tk.S4e_rtos.Rta.tk_name = "attitude_filter" then
                { tk with S4e_rtos.Rta.tk_period = period;
                  tk_deadline = period }
              else tk)
            tasks
        in
        (S4e_rtos.Rta.analyze tasks').S4e_rtos.Rta.a_schedulable
      in
      let filter =
        List.find
          (fun tk -> tk.S4e_rtos.Rta.tk_name = "attitude_filter")
          tasks
      in
      let rec first_miss period =
        if period <= filter.S4e_rtos.Rta.tk_wcet then period
        else if schedulable_at period then first_miss (period - 10)
        else period
      in
      let limit = first_miss 900 in
      Format.printf
        "@.the filter period can shrink from 900 to ~%d cycles before the \
         set misses a deadline@."
        (limit + 10))
