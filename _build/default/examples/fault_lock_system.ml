(* The lock-system scenario: IO security analysis + fault campaign.

   The MBMV 2019 companion paper demonstrates non-invasive dynamic
   memory/IO analysis on an access-control system whose lock is driven
   over a UART.  This example reproduces both halves:

   1. A door-lock controller reads a PIN from the UART, compares it to
      the stored secret, and — only from its dedicated driver routine —
      writes the unlock command to the UART-attached lock.  The IO
      guard whitelists that driver; a planted "exploit" path that pokes
      the UART directly from the main loop is detected immediately.

   2. A coverage-guided bit-flip campaign on the same binary shows
      which faults are masked, which corrupt the decision silently, and
      which crash or hang the controller (the fault paper's flow).

   Run with: dune exec examples/fault_lock_system.exe *)

let source = {|
  .equ UART,  0x10000000
  .equ EXIT,  0x00100000
  .equ SECRET, 0x2739

_start:
  li   s0, UART
  li   s1, SECRET
  # read 4 hex digits of the PIN from the UART into a0
  li   a0, 0
  li   s2, 0
  li   s3, 4
read_loop:
  lbu  a1, 0(s0)          # RX data register
  slli a0, a0, 4
  andi a1, a1, 0x0f
  or   a0, a0, a1
  addi s2, s2, 1
  blt  s2, s3, read_loop
  # compare with the secret
  bne  a0, s1, reject
  call lock_driver_open
  j    done
reject:
  # EXPLOIT PATH (intentionally planted): on a rejected PIN the
  # buggy error handler pokes the lock port directly instead of
  # going through the driver.
  li   a2, 0x4f            # 'O'
  sb   a2, 0(s0)
done:
  li   t1, EXIT
  sw   a0, 0(t1)
  ebreak

# The only routine authorized to command the lock.
lock_driver_open:
  li   t2, UART
  li   t3, 0x4f            # 'O' = open command
  sb   t3, 0(t2)
  ret
|}

let () =
  let program = S4e_asm.Assembler.assemble_exn source in
  let driver_lo =
    match S4e_asm.Program.symbol program "lock_driver_open" with
    | Some a -> a
    | None -> failwith "missing driver symbol"
  in
  let driver_hi = driver_lo + 5 * 4 in

  let attempt ~pin =
    let m = S4e_cpu.Machine.create () in
    let guard =
      S4e_core.Io_guard.attach m
        [ { S4e_core.Io_guard.p_device = "uart";
            p_allowed = [ (driver_lo, driver_hi) ];
            p_restrict = S4e_core.Io_guard.Restrict_writes } ]
    in
    S4e_asm.Program.load_machine program m;
    S4e_soc.Uart.feed m.S4e_cpu.Machine.uart pin;
    let stop = S4e_cpu.Machine.run m ~fuel:100_000 in
    (stop, S4e_core.Io_guard.violations guard, S4e_cpu.Machine.instret m)
  in

  Format.printf "== authorized path (correct PIN) ==@.";
  let stop, violations, _ = attempt ~pin:"\x02\x07\x03\x09" in
  Format.printf "run: %a, violations: %d (expected 0)@."
    S4e_cpu.Machine.pp_stop_reason stop (List.length violations);
  assert (violations = []);

  Format.printf "@.== exploit path (wrong PIN) ==@.";
  let stop, violations, instret = attempt ~pin:"\x01\x01\x01\x01" in
  Format.printf "run: %a@." S4e_cpu.Machine.pp_stop_reason stop;
  List.iter
    (fun v -> Format.printf "DETECTED: %a@." S4e_core.Io_guard.pp_violation v)
    violations;
  assert (violations <> []);
  Format.printf "(attack visible after %d of %d instructions)@."
    (match violations with v :: _ -> v.S4e_core.Io_guard.v_instret | [] -> 0)
    instret;

  Format.printf "@.== fault campaign on the controller ==@.";
  let cfg =
    { S4e_core.Flows.default_fault_config with
      S4e_core.Flows.ff_mutants = 150; ff_fuel = 100_000 }
  in
  let r = S4e_core.Flows.fault_flow cfg program in
  Format.printf "%a@." S4e_fault.Campaign.pp_summary r.S4e_core.Flows.ff_summary;
  let sdc =
    List.filter
      (fun (_, o) -> o = S4e_fault.Campaign.Sdc)
      r.S4e_core.Flows.ff_results
  in
  Format.printf "silent corruptions needing countermeasures:@.";
  List.iteri
    (fun i (f, _) ->
      if i < 5 then Format.printf "  %a@." S4e_fault.Fault.pp f)
    sdc
