(* WCET analysis of an automotive-style control task — the QTA flow.

   A brake-by-wire controller task reads a wheel-speed sample array,
   filters it, computes a brake command via a clamped PI loop, and
   writes the command to the GPIO actuator.  The safety question the
   QTA flow answers: does the task always finish within its 2000-cycle
   budget on the modeled core?

   Flow demonstrated:
     1. static WCET analysis (aiT-role): bound + per-loop bounds;
     2. export of the WCET-annotated CFG (ait2qta interchange);
     3. QTA co-simulation: worst-case time of the executed path;
     4. dynamic measurement, and the invariant
        dynamic <= path WCET <= static WCET.

   Run with: dune exec examples/wcet_brake_controller.exe *)

let samples = 16

let source = Printf.sprintf {|
  .equ GPIO_OUT, 0x10012000
  .equ EXIT,     0x00100000

_start:
  la   s0, wheel_speed      # sample buffer
  li   s1, %d               # sample count
  # --- moving-average filter over the samples ---
  li   s2, 0                # index
  li   a0, 0                # accumulator
filter_loop:
  lw   a1, 0(s0)
  add  a0, a0, a1
  addi s0, s0, 4
  addi s2, s2, 1
  blt  s2, s1, filter_loop
  div  a0, a0, s1           # mean wheel speed
  # --- PI control: drive toward the 900 rpm setpoint ---
  li   a2, 900
  sub  a3, a2, a0           # error
  li   a4, 0                # integral
  li   s2, 0
  li   s3, 8                # fixed 8 control sub-steps
pi_loop:
  add  a4, a4, a3           # integrate error
  srai a5, a4, 4            # ki * integral
  srai a6, a3, 1            # kp * error
  add  a7, a5, a6           # raw command
  addi s2, s2, 1
  blt  s2, s3, pi_loop
  # --- clamp the command into the actuator range [0, 255] ---
  li   a1, 255
  min  a7, a7, a1
  max  a7, a7, zero
  # --- actuate and exit ---
  call gpio_write
  li   t1, EXIT
  sw   a7, 0(t1)
  ebreak

gpio_write:
  li   t2, GPIO_OUT
  sw   a7, 0(t2)
  ret

  .data
wheel_speed:
  .word 880, 905, 912, 890, 875, 921, 908, 899
  .word 901, 893, 887, 918, 904, 896, 911, 902
|} samples

let budget_cycles = 2000

let () =
  let program = S4e_asm.Assembler.assemble_exn source in
  match S4e_core.Flows.wcet_flow program with
  | Error e ->
      Format.printf "analysis failed: %s@."
        (S4e_wcet.Analysis.describe_error e)
  | Ok r ->
      Format.printf "== static analysis (aiT role) ==@.%a@."
        S4e_wcet.Analysis.pp_report r.S4e_core.Flows.wr_report;
      (* export the interchange artifact, as the real flow would ship
         it from the analysis host to the simulation host *)
      (match S4e_wcet.Annotated_cfg.of_program program with
      | Ok acfg ->
          let text = S4e_wcet.Annotated_cfg.to_string acfg in
          Format.printf "== ait2qta artifact (%d bytes) ==@." (String.length text);
          String.split_on_char '\n' text
          |> List.filteri (fun i _ -> i < 6)
          |> List.iter (Format.printf "  %s@.")
      | Error _ -> ());
      Format.printf "...@.@.== QTA co-simulation ==@.";
      Format.printf "dynamic cycles:  %d@." r.S4e_core.Flows.wr_dynamic;
      Format.printf "path WCET:       %d@." r.S4e_core.Flows.wr_path;
      Format.printf "static WCET:     %d@." r.S4e_core.Flows.wr_static;
      assert (r.S4e_core.Flows.wr_dynamic <= r.S4e_core.Flows.wr_path);
      assert (r.S4e_core.Flows.wr_path <= r.S4e_core.Flows.wr_static);
      Format.printf "@.budget: %d cycles -> %s@." budget_cycles
        (if r.S4e_core.Flows.wr_static <= budget_cycles then
           "task PROVEN to meet its deadline"
         else "cannot prove the deadline; tighten the loop bounds or budget")
