examples/fault_lock_system.mli:
