examples/bmi_crypto.mli:
