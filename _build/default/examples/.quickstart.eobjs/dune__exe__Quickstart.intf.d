examples/quickstart.mli:
