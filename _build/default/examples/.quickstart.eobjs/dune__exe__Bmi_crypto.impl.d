examples/bmi_crypto.ml: Format List S4e_bmi
