examples/schedulability.ml: Format List Option S4e_asm S4e_core S4e_rtos S4e_wcet
