examples/coverage_suites.ml: Format List S4e_core S4e_coverage S4e_cpu S4e_torture String
