examples/fault_lock_system.ml: Format List S4e_asm S4e_core S4e_cpu S4e_fault S4e_soc
