examples/quickstart.ml: Format List S4e_asm S4e_cfg S4e_core S4e_cpu
