examples/wcet_brake_controller.ml: Format List Printf S4e_asm S4e_core S4e_wcet String
