examples/schedulability.mli:
