examples/periodic_scheduler.ml: Format List Option Printf S4e_asm S4e_cpu S4e_soc S4e_wcet
