examples/periodic_scheduler.mli:
