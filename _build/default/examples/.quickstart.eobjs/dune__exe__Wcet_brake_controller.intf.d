examples/wcet_brake_controller.mli:
