examples/coverage_suites.mli:
