(* The coverage experiment (MBMV 2021 / experiment E1): measure the
   instruction-type and register coverage of three test suites, then of
   their union — the "unified test suite".

   The published result: individually each suite leaves gaps; combined,
   the suites reach 100 % GPR+FPR register coverage and 98.7 %
   instruction-type coverage.  This reproduction shows the same shape;
   the residual gap here is the deliberately uncovered wfi.

   Run with: dune exec examples/coverage_suites.exe *)

let pct f = 100.0 *. f

let () =
  let isa = S4e_cpu.Machine.default_config.S4e_cpu.Machine.isa in
  let suites =
    [ ("architectural", S4e_torture.Suites.arch_suite ~isa);
      ("unit", S4e_torture.Suites.unit_suite ~isa);
      ("torture",
       S4e_torture.Suites.torture_suite ~isa ~seeds:[ 1; 2; 3; 4; 5 ]) ]
  in
  Format.printf "%-16s %-8s %-10s %-8s %-8s %-8s@." "suite" "progs"
    "instr-type" "GPR" "FPR" "CSR";
  let reports =
    List.map
      (fun (name, progs) ->
        let rep = S4e_core.Flows.coverage_of_suite progs in
        Format.printf "%-16s %-8d %9.1f%% %6.1f%% %6.1f%% %6.1f%%@." name
          (List.length progs)
          (pct (S4e_coverage.Report.instruction_coverage rep))
          (pct (S4e_coverage.Report.gpr_coverage rep))
          (pct (S4e_coverage.Report.fpr_coverage rep))
          (pct (S4e_coverage.Report.csr_coverage rep));
        rep)
      suites
  in
  let union =
    List.fold_left S4e_coverage.Report.combine
      (S4e_coverage.Report.create ~isa)
      reports
  in
  Format.printf "%-16s %-8s %9.1f%% %6.1f%% %6.1f%% %6.1f%%@." "unified" "-"
    (pct (S4e_coverage.Report.instruction_coverage union))
    (pct (S4e_coverage.Report.gpr_coverage union))
    (pct (S4e_coverage.Report.fpr_coverage union))
    (pct (S4e_coverage.Report.csr_coverage union));
  Format.printf "@.instruction types still missing from the union: %s@."
    (String.concat ", " (S4e_coverage.Report.missed_instructions union));
  Format.printf
    "(the paper reports 100%% register and 98.7%% instruction coverage for \
     its unified suite)@."
