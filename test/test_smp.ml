(* Multi-hart machine tests.

   Covers the SMP bug class the single-hart machine used to hide:
   mhartid hardwired to 0, misa not advertising the configured
   extensions, LR/SC reservations surviving trap entry (and machine
   forks), and WFI treated as terminal even when another hart could
   wake the sleeper with an IPI.  The differential half runs the
   deterministic SMP torture workloads (lib/torture/smp.ml) across all
   six engine configurations and across scheduler slice sizes, and
   fuzzes LR/SC/AMO sequences the pre-SMP torture suite never
   generated. *)

module Machine = S4e_cpu.Machine
module Arch_state = S4e_cpu.Arch_state
module Csr = S4e_isa.Csr
module Isa_module = S4e_isa.Isa_module
module Smp = S4e_torture.Smp
module Torture = S4e_torture.Torture

let prop ?(count = 15) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let sb_off c = { c with Machine.superblocks = false }

(* Same six engine configurations as test_lowered.ml. *)
let engines =
  [ ("lowered", sb_off Machine.default_config);
    ("unchained", sb_off { Machine.default_config with Machine.chain_blocks = false });
    ("generic-tb", sb_off { Machine.default_config with Machine.lower_blocks = false });
    ("single-step", sb_off { Machine.default_config with Machine.use_tb_cache = false });
    ("tlb-off", sb_off { Machine.default_config with Machine.mem_tlb = false });
    ("superblocks", Machine.default_config)
  ]

let with_harts ?(slice = 1024) n config =
  { config with Machine.harts = n; Machine.hart_slice = slice }

let run_program ?(fuel = 1_000_000) config p =
  let m = Machine.create ~config () in
  S4e_asm.Program.load_machine p m;
  let stop = Machine.run m ~fuel in
  (m, stop)

let stop_str s = Format.asprintf "%a" Machine.pp_stop_reason s

let check_exit_ok name stop =
  Alcotest.(check string) (name ^ ": stop") "exited with code 0" (stop_str stop)

(* ---------------- per-hart CSR identity ---------------- *)

let test_mhartid_csr () =
  let m = Machine.create ~config:(with_harts 4 Machine.default_config) () in
  for i = 0 to 3 do
    let st = m.Machine.harts.(i).Machine.hx_state in
    Alcotest.(check int) "hartid field" i st.Arch_state.hartid;
    match Arch_state.csr_read st Csr.mhartid with
    | Some v -> Alcotest.(check int) "mhartid csr" i v
    | None -> Alcotest.fail "mhartid unimplemented"
  done

(* Each hart publishes mhartid+1 into its own slot; hart 0 collects.
   Exit status: sum of slots minus the expected sum (0 on success). *)
let test_mhartid_program () =
  let p =
    S4e_asm.Assembler.assemble_exn
      {|
_start:
  csrr t0, mhartid
  la   s0, slots
  slli t1, t0, 2
  add  t1, s0, t1
  addi t2, t0, 1
  sw   t2, 0(t1)
  bne  t0, x0, halt
wait0:
  lw   a0, 0(s0)
  lw   a1, 4(s0)
  beq  a0, x0, wait0
  beq  a1, x0, wait0
  add  a0, a0, a1
  addi a0, a0, -3
  li   t1, 0x00100000
  sw   a0, 0(t1)
halt:
  j halt
  .data
slots:
  .word 0, 0
|}
  in
  let _, stop = run_program (with_harts 2 Machine.default_config) p in
  check_exit_ok "mhartid program" stop

let test_misa () =
  let m = Machine.create () in
  let v =
    match Arch_state.csr_read m.Machine.state Csr.misa with
    | Some v -> v
    | None -> Alcotest.fail "misa unimplemented"
  in
  let has b = v land (1 lsl b) <> 0 in
  Alcotest.(check bool) "MXL=RV32" true (v land 0x4000_0000 <> 0);
  Alcotest.(check bool) "I" true (has 8);
  Alcotest.(check bool) "M" true (has 12);
  Alcotest.(check bool) "A" true (has 0);
  Alcotest.(check bool) "F" true (has 5);
  Alcotest.(check bool) "C" true (has 2);
  (* a restricted machine must not over-advertise *)
  let m' =
    Machine.create
      ~config:{ Machine.default_config with
                Machine.isa = [ Isa_module.I; Isa_module.M; Isa_module.Zicsr ] }
      ()
  in
  match Arch_state.csr_read m'.Machine.state Csr.misa with
  | Some v' ->
      Alcotest.(check bool) "restricted: no A" true (v' land 1 = 0);
      Alcotest.(check bool) "restricted: no F" true (v' land (1 lsl 5) = 0);
      Alcotest.(check bool) "restricted: M kept" true (v' land (1 lsl 12) <> 0)
  | None -> Alcotest.fail "misa unimplemented"

(* ---------------- reservation lifetime ---------------- *)

(* LR, then a synchronous trap (ecall): the SC after mret must fail.
   Exit status = sc result - 1, so success means the SC wrote rd=1. *)
let test_lr_trap_sc_fails () =
  let p =
    S4e_asm.Assembler.assemble_exn
      {|
_start:
  la   t0, handler
  csrw mtvec, t0
  la   a0, cell
  lr.w a1, (a0)
  ecall
  sc.w a2, a1, (a0)
  addi a2, a2, -1
  li   t1, 0x00100000
  sw   a2, 0(t1)
handler:
  csrr t2, mepc
  addi t2, t2, 4
  csrw mepc, t2
  mret
  .data
cell:
  .word 7
|}
  in
  List.iter
    (fun (name, config) ->
      let _, stop = run_program config p in
      check_exit_ok (name ^ ": sc after trap fails") stop)
    engines

(* LR, then an asynchronous interrupt (self-IPI through the CLINT,
   taken during the WFI): the SC after the handler returns must fail. *)
let test_lr_interrupt_sc_fails () =
  let p =
    S4e_asm.Assembler.assemble_exn
      {|
_start:
  la   t0, handler
  csrw mtvec, t0
  li   t0, 8
  csrw mie, t0
  csrs mstatus, t0
  la   a0, cell
  lr.w a1, (a0)
  li   t1, 1
  li   t2, 0x02000000
  sw   t1, 0(t2)
  wfi
  sc.w a2, a1, (a0)
  addi a2, a2, -1
  li   t1, 0x00100000
  sw   a2, 0(t1)
handler:
  li   t3, 0x02000000
  sw   x0, 0(t3)
  mret
  .data
cell:
  .word 7
|}
  in
  List.iter
    (fun (name, config) ->
      let _, stop = run_program config p in
      check_exit_ok (name ^ ": sc after interrupt fails") stop)
    engines

let test_reservation_copy_restore () =
  let st = Arch_state.create () in
  st.Arch_state.reservation <- Some 0x8000_0040;
  let c = Arch_state.copy st in
  Alcotest.(check bool) "copy keeps reservation" true
    (c.Arch_state.reservation = Some 0x8000_0040);
  st.Arch_state.reservation <- None;
  Arch_state.restore st c;
  Alcotest.(check bool) "restore keeps reservation" true
    (st.Arch_state.reservation = Some 0x8000_0040)

(* Machine-level fork consistency: snapshot between LR and SC, run to
   the end, restore, run again — both runs must agree bit-for-bit
   (the snapshot carries the live reservation of every hart). *)
let test_reservation_machine_snapshot () =
  let p =
    S4e_asm.Assembler.assemble_exn
      {|
_start:
  la   a0, cell
  li   a1, 25
  lr.w a2, (a0)
  sc.w a3, a1, (a0)
  lw   a4, 0(a0)
  sub  a0, a4, a1
  add  a0, a0, a3
  li   t1, 0x00100000
  sw   a0, 0(t1)
  .data
cell:
  .word 7
|}
  in
  let config = with_harts 2 Machine.default_config in
  let m = Machine.create ~config () in
  S4e_asm.Program.load_machine p m;
  (* run just past the LR of hart 0: la (2 insns) + li + lr.w *)
  let stop1 = Machine.run m ~fuel:4 in
  Alcotest.(check string) "paused" "out of fuel" (stop_str stop1);
  Alcotest.(check bool) "reservation live at snapshot" true
    (m.Machine.harts.(0).Machine.hx_state.Arch_state.reservation <> None);
  let snap = Machine.snapshot m in
  let stop2 = Machine.run m ~fuel:1_000_000 in
  let d2 = Machine.state_digest m in
  Machine.restore m snap;
  let stop3 = Machine.run m ~fuel:1_000_000 in
  let d3 = Machine.state_digest m in
  Alcotest.(check string) "same stop" (stop_str stop2) (stop_str stop3);
  Alcotest.(check string) "same digest" (Digest.to_hex d2) (Digest.to_hex d3);
  check_exit_ok "sc succeeds" stop2

(* ---------------- WFI + IPI ---------------- *)

(* Hart 1 sleeps in WFI with only MSIE enabled; hart 0 sends the IPI
   through the CLINT.  Pre-SMP semantics would have declared Wfi_halt.
   Hart 1 acknowledges by writing 42; hart 0 exits with status
   flag - 42. *)
let test_wfi_wakes_on_ipi () =
  let p =
    S4e_asm.Assembler.assemble_exn
      {|
_start:
  csrr t0, mhartid
  la   s0, flag
  li   s1, 0x02000000
  bne  t0, x0, hart1
  li   t1, 1
  sw   t1, 4(s1)
wait:
  lw   a0, 0(s0)
  beq  a0, x0, wait
  addi a0, a0, -42
  li   t1, 0x00100000
  sw   a0, 0(t1)
hart1:
  li   t1, 8
  csrw mie, t1
sleep:
  lw   t2, 4(s1)
  bne  t2, x0, woke
  wfi
  j    sleep
woke:
  sw   x0, 4(s1)
  li   t2, 42
  sw   t2, 0(s0)
halt:
  j halt
  .data
flag:
  .word 0
|}
  in
  List.iter
    (fun (name, config) ->
      let _, stop = run_program (with_harts 2 config) p in
      check_exit_ok (name ^ ": wfi wakes on IPI") stop)
    engines

(* A lone parked hart with nothing able to wake it is still a halt. *)
let test_wfi_halt_when_unwakeable () =
  let p = S4e_asm.Assembler.assemble_exn {|
_start:
  wfi
|} in
  let _, stop = run_program (with_harts 2 Machine.default_config) p in
  Alcotest.(check string) "both harts sleep forever" "halted in wfi"
    (stop_str stop)

(* ---------------- SMP differential ---------------- *)

let digest_of ?(include_time = true) ?(include_instret = true) m =
  Digest.to_hex (Machine.state_digest ~include_time ~include_instret m)

(* All six engines agree on the full digest of both SMP workloads at a
   fixed slice. *)
let test_smp_engines_agree () =
  List.iter
    (fun (wname, p) ->
      let fuel = Smp.fuel ~harts:2 ~rounds:8 in
      match engines with
      | [] -> assert false
      | (ref_name, ref_config) :: rest ->
          let mr, stopr = run_program ~fuel (with_harts 2 ref_config) p in
          check_exit_ok (wname ^ " " ^ ref_name) stopr;
          let dr = digest_of mr in
          List.iter
            (fun (name, config) ->
              let m, stop = run_program ~fuel (with_harts 2 config) p in
              Alcotest.(check string)
                (Printf.sprintf "%s: %s vs %s stop" wname name ref_name)
                (stop_str stopr) (stop_str stop);
              Alcotest.(check string)
                (Printf.sprintf "%s: %s vs %s digest" wname name ref_name)
                dr (digest_of m))
            rest)
    (Smp.suite ~harts:2 ~rounds:8)

(* Scheduler-slice invariance.  The IPI ring is deterministic down to
   instret and mtime, so the full digest must match across slices; the
   spinlock's spin counts depend on the interleaving, so its digest is
   compared with time and instret masked. *)
let slices = [ 64; 256; 1024; 4096 ]

let test_ipi_slice_invariant () =
  List.iter
    (fun harts ->
      let _, p = Smp.ipi_ring ~harts ~rounds:8 in
      let fuel = Smp.fuel ~harts ~rounds:8 in
      let digests =
        List.map
          (fun slice ->
            let m, stop =
              run_program ~fuel (with_harts ~slice harts Machine.default_config) p
            in
            check_exit_ok (Printf.sprintf "ipi %d harts slice %d" harts slice) stop;
            digest_of m)
          slices
      in
      match digests with
      | d :: rest ->
          List.iteri
            (fun i d' ->
              Alcotest.(check string)
                (Printf.sprintf "ipi %d harts: slice %d vs %d" harts
                   (List.nth slices (i + 1)) (List.hd slices))
                d d')
            rest
      | [] -> assert false)
    [ 2; 4 ]

let test_spinlock_slice_invariant () =
  List.iter
    (fun harts ->
      let _, p = Smp.spinlock ~harts ~rounds:8 in
      let fuel = Smp.fuel ~harts ~rounds:8 in
      let digests =
        List.map
          (fun slice ->
            let m, stop =
              run_program ~fuel (with_harts ~slice harts Machine.default_config) p
            in
            check_exit_ok
              (Printf.sprintf "spinlock %d harts slice %d" harts slice) stop;
            digest_of ~include_time:false ~include_instret:false m)
          slices
      in
      match digests with
      | d :: rest ->
          List.iter
            (fun d' ->
              Alcotest.(check string)
                (Printf.sprintf "spinlock %d harts: relaxed digest" harts)
                d d')
            rest
      | [] -> assert false)
    [ 2; 4 ]

(* Both workloads complete at 4 harts under every engine. *)
let test_four_harts_complete () =
  List.iter
    (fun (wname, p) ->
      let fuel = Smp.fuel ~harts:4 ~rounds:8 in
      List.iter
        (fun (name, config) ->
          let _, stop = run_program ~fuel (with_harts 4 config) p in
          check_exit_ok (Printf.sprintf "%s at 4 harts (%s)" wname name) stop)
        engines)
    (Smp.suite ~harts:4 ~rounds:8)

(* Staged fuel must interleave exactly like a single run: drip-feed the
   scheduler and compare against one uninterrupted execution. *)
let test_staged_fuel_matches () =
  let _, p = Smp.ipi_ring ~harts:2 ~rounds:8 in
  let fuel = Smp.fuel ~harts:2 ~rounds:8 in
  let config = with_harts 2 Machine.default_config in
  let m1, stop1 = run_program ~fuel config p in
  let m2 = Machine.create ~config () in
  S4e_asm.Program.load_machine p m2;
  let rec drip () =
    match Machine.run m2 ~fuel:777 with
    | Machine.Out_of_fuel -> drip ()
    | stop -> stop
  in
  let stop2 = drip () in
  Alcotest.(check string) "stop" (stop_str stop1) (stop_str stop2);
  Alcotest.(check string) "digest" (digest_of m1) (digest_of m2)

(* ---------------- LR/SC/AMO fuzz (single hart) ---------------- *)

(* The pre-SMP torture suite never generated atomics; fuzz them across
   the engine matrix now that reservations interact with traps. *)
let prop_amo_differential =
  prop "torture(A): all engines agree" seed_gen (fun seed ->
      let cfg =
        { Torture.default_config with
          Torture.seed;
          Torture.isa = [ Isa_module.I; Isa_module.M; Isa_module.A ] }
      in
      let p = Torture.generate cfg in
      let fuel = Torture.fuel_bound cfg in
      match engines with
      | [] -> assert false
      | (_, ref_config) :: rest ->
          let mr, stopr = run_program ~fuel ref_config p in
          let dr = digest_of mr in
          List.for_all
            (fun (_, config) ->
              let m, stop = run_program ~fuel config p in
              stop_str stop = stop_str stopr && digest_of m = dr)
            rest)

let () =
  Alcotest.run "smp"
    [ ( "identity",
        [ Alcotest.test_case "mhartid csr per hart" `Quick test_mhartid_csr;
          Alcotest.test_case "mhartid program" `Quick test_mhartid_program;
          Alcotest.test_case "misa advertises isa" `Quick test_misa ] );
      ( "reservation",
        [ Alcotest.test_case "sc fails after trap" `Quick test_lr_trap_sc_fails;
          Alcotest.test_case "sc fails after interrupt" `Quick
            test_lr_interrupt_sc_fails;
          Alcotest.test_case "copy/restore keep reservation" `Quick
            test_reservation_copy_restore;
          Alcotest.test_case "machine snapshot fork" `Quick
            test_reservation_machine_snapshot ] );
      ( "wfi",
        [ Alcotest.test_case "wakes on IPI" `Quick test_wfi_wakes_on_ipi;
          Alcotest.test_case "halts when unwakeable" `Quick
            test_wfi_halt_when_unwakeable ] );
      ( "differential",
        [ Alcotest.test_case "engines agree (2 harts)" `Quick
            test_smp_engines_agree;
          Alcotest.test_case "ipi slice-invariant" `Quick
            test_ipi_slice_invariant;
          Alcotest.test_case "spinlock slice-invariant" `Quick
            test_spinlock_slice_invariant;
          Alcotest.test_case "4 harts complete" `Quick test_four_harts_complete;
          Alcotest.test_case "staged fuel" `Quick test_staged_fuel_matches;
          prop_amo_differential ] ) ]
