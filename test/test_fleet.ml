(* Fleet tests: the JSON codec, the HTTP framing, the lease table, the
   orchestrator state machine driven transport-free through
   Server.handle, and the end-to-end determinism property: an n-shard
   fleet execution with randomized worker deaths, lease re-assignment,
   and resume merges to exactly the outcome set of the unsharded
   campaign. *)

module Json = S4e_fleet.Json
module Http = S4e_fleet.Http
module Lease = S4e_fleet.Lease
module Server = S4e_fleet.Server
module Journal = S4e_fault.Journal
module Campaign = S4e_fault.Campaign
module Flows = S4e_core.Flows

let prop ?(count = 20) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

(* ---------------- json ---------------- *)

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1_000_000) 1_000_000);
        map (fun f -> Json.Float (Float.of_int f /. 16.)) (int_range (-4096) 4096);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [ (3, scalar);
          (1, map (fun l -> Json.List l) (list_size (int_bound 4) (value (depth - 1))));
          (1,
           map
             (fun kvs -> Json.Obj kvs)
             (list_size (int_bound 4)
                (pair (string_size ~gen:printable (int_bound 8))
                   (value (depth - 1))))) ]
  in
  value 3

let json_roundtrip =
  prop ~count:200 "json print/parse roundtrip" (QCheck.make json_gen)
    (fun v -> Json.parse (Json.to_string v) = Ok v)

let test_json_parse_strictness () =
  let bad = [ "{"; "[1,]"; "{\"a\":1,}"; "1 2"; "tru"; "\"\\x\""; "" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "parse accepted %S" s
      | Error _ -> ())
    bad;
  Alcotest.(check bool) "escapes roundtrip" true
    (Json.parse "\"a\\n\\\"b\\u0041\"" = Ok (Json.String "a\n\"bA"))

let test_json_reads_journal_lines () =
  (* the orchestrator merges journal lines as JSON: every line the
     journal writer produces must be parseable by this module *)
  let h = { Journal.j_seed = 3; j_total = 10; j_shard = (1, 4);
            j_program = "abc123" } in
  let fault = { S4e_fault.Fault.loc = S4e_fault.Fault.Gpr (7, 3);
                kind = S4e_fault.Fault.Transient 42 } in
  let lines =
    [ Journal.header_line h;
      Journal.record_line
        { Journal.r_index = 5; r_fault = fault; r_outcome = Campaign.Sdc };
      Journal.record_line
        { Journal.r_index = 6; r_fault = fault;
          r_outcome = Campaign.Errored "boom \"quoted\"\n" } ]
  in
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok (Json.Obj _) -> ()
      | Ok _ -> Alcotest.failf "journal line parsed to a non-object: %s" line
      | Error e -> Alcotest.failf "journal line unparseable (%s): %s" e line)
    lines;
  (* and the parsed fields match what Journal.parse_record sees *)
  let line =
    Journal.record_line
      { Journal.r_index = 9; r_fault = fault; r_outcome = Campaign.Crashed }
  in
  let v = Result.get_ok (Json.parse line) in
  Alcotest.(check (option int)) "index" (Some 9) (Json.mem_int "i" v);
  Alcotest.(check (option string)) "outcome" (Some "crashed")
    (Json.mem_str "outcome" v);
  Alcotest.(check (option string)) "fault" (Some (S4e_fault.Fault.to_string fault))
    (Json.mem_str "fault" v)

(* ---------------- http ---------------- *)

let test_http_roundtrip_over_pipe () =
  let rd, wr = Unix.pipe () in
  let oc = Unix.out_channel_of_descr wr in
  let ic = Unix.in_channel_of_descr rd in
  Http.write_request oc ~meth:"POST" ~path:"/api/records"
    ~body:"{\"lease\":\"j1:2\"}";
  (match Http.read_request ic with
  | Ok rq ->
      Alcotest.(check string) "method" "POST" rq.Http.rq_method;
      Alcotest.(check string) "path" "/api/records" rq.Http.rq_path;
      Alcotest.(check string) "body" "{\"lease\":\"j1:2\"}" rq.Http.rq_body
  | Error _ -> Alcotest.fail "request did not roundtrip");
  Http.write_response oc ~status:409 "{\"error\":\"conflict\"}";
  (match Http.read_response ic with
  | Ok rs ->
      Alcotest.(check int) "status" 409 rs.Http.rs_status;
      Alcotest.(check string) "body" "{\"error\":\"conflict\"}" rs.Http.rs_body
  | Error e -> Alcotest.failf "response did not roundtrip: %s" e);
  close_out_noerr oc;
  close_in_noerr ic

let test_addr_parsing () =
  let ok s = Result.get_ok (Http.addr_of_string s) in
  Alcotest.(check bool) "host:port" true
    (ok "127.0.0.1:4750" = Http.Tcp ("127.0.0.1", 4750));
  Alcotest.(check bool) "bare port" true (ok "8080" = Http.Tcp ("127.0.0.1", 8080));
  Alcotest.(check bool) "unix prefix" true
    (ok "unix:/tmp/x.sock" = Http.Unix_path "/tmp/x.sock");
  Alcotest.(check bool) "bare path" true
    (ok "/tmp/x.sock" = Http.Unix_path "/tmp/x.sock");
  List.iter
    (fun s ->
      match Http.addr_of_string s with
      | Ok _ -> Alcotest.failf "accepted bad address %S" s
      | Error _ -> ())
    [ ""; "host:99999"; "nonsense" ]

(* ---------------- lease table ---------------- *)

let test_lease_lifecycle () =
  let t = Lease.create ~count:3 in
  let ttl = 10. in
  (* three acquires hand out the three shards in order *)
  let g1 = Option.get (Lease.acquire t ~now:0. ~ttl ~worker:"a") in
  let g2 = Option.get (Lease.acquire t ~now:0. ~ttl ~worker:"b") in
  let g3 = Option.get (Lease.acquire t ~now:0. ~ttl ~worker:"a") in
  Alcotest.(check (list int)) "shards in order" [ 0; 1; 2 ]
    [ fst g1; fst g2; fst g3 ];
  Alcotest.(check bool) "no fourth" true
    (Lease.acquire t ~now:1. ~ttl ~worker:"c" = None);
  (* renewal extends, completion sticks *)
  Alcotest.(check bool) "renew live" true (Lease.renew t ~now:5. ~ttl ~lease:(snd g1));
  Alcotest.(check bool) "complete live" true
    (Lease.complete t ~now:14. ~lease:(snd g1) = Ok 0);
  Alcotest.(check int) "one done" 1 (Lease.completed t);
  (* an expired lease is reclaimed and re-leased under a fresh id *)
  let g2' = Option.get (Lease.acquire t ~now:25. ~ttl ~worker:"c") in
  Alcotest.(check int) "reclaimed shard 1 re-leased" 1 (fst g2');
  Alcotest.(check bool) "fresh lease id" true (snd g2' <> snd g2);
  Alcotest.(check bool) "stale renew rejected" false
    (Lease.renew t ~now:26. ~ttl ~lease:(snd g2));
  (match Lease.complete t ~now:26. ~lease:(snd g2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale lease completed");
  Alcotest.(check bool) "reclaims counted" true (Lease.reclaimed_total t >= 2);
  (* g3's lease expired in the same reap; shard 2 queues again *)
  let g3' = Option.get (Lease.acquire t ~now:25. ~ttl ~worker:"b") in
  Alcotest.(check int) "expired shard re-leased" 2 (fst g3');
  (* release voluntarily returns the shard to the queue *)
  Alcotest.(check bool) "release" true (Lease.release t ~lease:(snd g3'));
  let g3'' = Option.get (Lease.acquire t ~now:26. ~ttl ~worker:"b") in
  Alcotest.(check int) "released shard re-leased" 2 (fst g3'');
  Alcotest.(check bool) "complete rest" true
    (Lease.complete t ~now:27. ~lease:(snd g2') = Ok 1
    && Lease.complete t ~now:27. ~lease:(snd g3'') = Ok 2);
  Alcotest.(check bool) "all done" true (Lease.all_done t)

(* ---------------- server, driven through handle ---------------- *)

let req ?(meth = "POST") path body =
  { Http.rq_method = meth; rq_path = path; rq_headers = [];
    rq_body = (match body with Some v -> Json.to_string v | None -> "") }

let call t ?meth path body =
  let rs = Server.handle t (req ?meth path body) in
  (rs.Http.rs_status, Result.get_ok (Json.parse (String.trim rs.Http.rs_body)))

let jstr k v = Option.get (Json.mem_str k v)
let jint k v = Option.get (Json.mem_int k v)

let header_line ~seed ~total ~shard:(i, n) ~program =
  Printf.sprintf
    "{\"s4e_journal\":1,\"seed\":%d,\"total\":%d,\"shard\":\"%d/%d\",\"program\":\"%s\"}"
    seed total i n program

let record_line ~i ~outcome =
  Printf.sprintf "{\"i\":%d,\"fault\":\"G%d.0P\",\"outcome\":\"%s\"}" i i outcome

let submit t ~shards =
  let _, v =
    call t "/api/jobs"
      (Some (Json.Obj [ ("shards", Json.Int shards) ]))
  in
  jstr "job" v

let lease t ~worker =
  let _, v = call t "/api/lease" (Some (Json.Obj [ ("worker", Json.String worker) ])) in
  v

let post_records t ~lease ~lines =
  call t "/api/records"
    (Some
       (Json.Obj
          [ ("lease", Json.String lease);
            ("lines", Json.List (List.map (fun l -> Json.String l) lines)) ]))

let test_server_happy_path () =
  let now = ref 0. in
  let t = Server.create ~ttl:30. ~clock:(fun () -> !now) () in
  let job = submit t ~shards:2 in
  Alcotest.(check string) "job ids are ordinal" "j1" job;
  (* two workers lease the two shards *)
  let g0 = lease t ~worker:"a" and g1 = lease t ~worker:"b" in
  Alcotest.(check (list int)) "both shards out" [ 0; 1 ]
    (List.sort compare [ jint "shard" g0; jint "shard" g1 ]);
  Alcotest.(check bool) "then idle" true
    (Json.mem_bool "idle" (lease t ~worker:"c") = Some true);
  (* stream: header + the shard's records; indices i mod 2 = shard *)
  let h = header_line ~seed:1 ~total:4 ~shard:(jint "shard" g0, 2) ~program:"p" in
  let st, v =
    post_records t ~lease:(jstr "lease" g0)
      ~lines:[ h; record_line ~i:(jint "shard" g0) ~outcome:"masked";
               record_line ~i:(jint "shard" g0 + 2) ~outcome:"sdc" ]
  in
  Alcotest.(check int) "records accepted" 200 st;
  Alcotest.(check (option int)) "fresh" (Some 2) (Json.mem_int "accepted" v);
  let st, _ = call t "/api/complete" (Some (Json.Obj [ ("lease", Json.String (jstr "lease" g0)) ])) in
  Alcotest.(check int) "complete ok" 200 st;
  (* completing an unfinished shard is rejected *)
  let st, _ = call t "/api/complete" (Some (Json.Obj [ ("lease", Json.String (jstr "lease" g1)) ])) in
  Alcotest.(check int) "incomplete shard rejected" 409 st;
  let _ =
    post_records t ~lease:(jstr "lease" g1)
      ~lines:[ record_line ~i:(jint "shard" g1) ~outcome:"crashed";
               record_line ~i:(jint "shard" g1 + 2) ~outcome:"hung" ]
  in
  let st, v = call t "/api/complete" (Some (Json.Obj [ ("lease", Json.String (jstr "lease" g1)) ])) in
  Alcotest.(check int) "second complete ok" 200 st;
  Alcotest.(check (option string)) "job done" (Some "done")
    (Json.mem_str "job_state" v);
  let _, st_json = call t ~meth:"GET" ("/api/jobs/" ^ job) None in
  Alcotest.(check (option int)) "all records merged" (Some 4)
    (Json.mem_int "records" st_json);
  let summary = Option.get (Json.mem "summary" st_json) in
  Alcotest.(check (list int)) "summary counts" [ 1; 1; 1; 1 ]
    [ jint "masked" summary; jint "sdc" summary; jint "crashed" summary;
      jint "hung" summary ]

let test_server_expiry_resume_and_dup () =
  let now = ref 0. in
  let t = Server.create ~ttl:10. ~clock:(fun () -> !now) () in
  let _job = submit t ~shards:1 in
  let g = lease t ~worker:"dies" in
  let h = header_line ~seed:1 ~total:3 ~shard:(0, 1) ~program:"p" in
  let _ = post_records t ~lease:(jstr "lease" g)
      ~lines:[ h; record_line ~i:0 ~outcome:"masked" ] in
  (* the worker dies; its lease expires; the shard is re-leased with
     the survivor's records as the resume payload *)
  now := 60.;
  let g' = lease t ~worker:"heir" in
  Alcotest.(check int) "same shard re-leased" 0 (jint "shard" g');
  Alcotest.(check bool) "fresh lease" true (jstr "lease" g <> jstr "lease" g');
  let resume = Option.get (Json.mem "resume" g') in
  Alcotest.(check int) "resume carries the merged record" 1
    (List.length (Option.get (Json.mem_list "lines" resume)));
  Alcotest.(check bool) "resume header is canonical" true
    (jstr "header" resume = h);
  (* stale-lease records still merge (the work is valid), but the
     reply tells the dead worker's ghost to stop *)
  let _, v = post_records t ~lease:(jstr "lease" g)
      ~lines:[ record_line ~i:1 ~outcome:"sdc" ] in
  Alcotest.(check (option bool)) "ghost told to stop" (Some false)
    (Json.mem_bool "lease_ok" v);
  Alcotest.(check (option int)) "ghost record still merged" (Some 1)
    (Json.mem_int "accepted" v);
  (* duplicates are deduplicated, conflicts fail the job *)
  let _, v = post_records t ~lease:(jstr "lease" g')
      ~lines:[ record_line ~i:0 ~outcome:"masked";
               record_line ~i:2 ~outcome:"hung" ] in
  Alcotest.(check (option int)) "dup deduplicated" (Some 1)
    (Json.mem_int "duplicates" v);
  let st, _ = call t "/api/complete"
      (Some (Json.Obj [ ("lease", Json.String (jstr "lease" g)) ])) in
  Alcotest.(check int) "stale complete rejected" 410 st;
  let st, _ = call t "/api/complete"
      (Some (Json.Obj [ ("lease", Json.String (jstr "lease" g')) ])) in
  Alcotest.(check int) "heir completes" 200 st;
  Alcotest.(check int) "no running jobs left" 0 (Server.jobs_running t)

let test_server_conflict_fails_job () =
  let t = Server.create () in
  let job = submit t ~shards:1 in
  let g = lease t ~worker:"w" in
  let h = header_line ~seed:1 ~total:2 ~shard:(0, 1) ~program:"p" in
  let _ = post_records t ~lease:(jstr "lease" g)
      ~lines:[ h; record_line ~i:0 ~outcome:"masked" ] in
  let st, _ = post_records t ~lease:(jstr "lease" g)
      ~lines:[ record_line ~i:0 ~outcome:"sdc" ] in
  Alcotest.(check int) "conflict reported" 409 st;
  let _, v = call t ~meth:"GET" ("/api/jobs/" ^ job) None in
  Alcotest.(check (option string)) "job failed" (Some "failed")
    (Json.mem_str "state" v)

let test_server_fairness_across_jobs () =
  (* with two running jobs, grants alternate to the job with fewer
     active leases instead of draining the first submission *)
  let t = Server.create () in
  let a = submit t ~shards:2 and b = submit t ~shards:2 in
  let owners =
    List.init 4 (fun i -> jstr "job" (lease t ~worker:(Printf.sprintf "w%d" i)))
  in
  Alcotest.(check int) "two grants each"
    2 (List.length (List.filter (( = ) a) owners));
  Alcotest.(check int) "two grants each (b)"
    2 (List.length (List.filter (( = ) b) owners))

(* ---------------- the determinism property (satellite) ------------- *)

let fleet_src = {|
_start:
  li   a0, 0
  li   a1, 1
  li   a2, 18
l:
  add  a0, a0, a1
  addi a1, a1, 1
  blt  a1, a2, l
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
|}

let fleet_program () = S4e_asm.Assembler.assemble_exn fleet_src

let flow_cfg ~seed ~n =
  { Flows.default_fault_config with
    Flows.ff_seed = seed; ff_mutants = n; ff_fuel = 100_000;
    ff_hang_budget = Flows.Hang_fuel }

(* One simulated fleet worker turn: take a lease, run the real
   campaign shard through Flows.fault_campaign with the grant's resume
   payload, stream the journal lines — but deliver only a prefix when
   the death plan says this worker dies mid-shard (the undelivered
   tail is exactly what a SIGKILL loses), then either complete or
   vanish.  Time is a fake clock, so lease expiry is deterministic. *)
let run_fleet_simulation ~shards ~seed ~n ~deaths =
  let p = fleet_program () in
  let cfg = flow_cfg ~seed ~n in
  let now = ref 0. in
  let dir = Filename.temp_file "s4e_fleet_sim" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let t = Server.create ~ttl:10. ~journal_dir:dir ~clock:(fun () -> !now) () in
  let job = submit t ~shards in
  let deaths = ref deaths in
  let steps = ref 0 in
  let rec drive () =
    incr steps;
    if !steps > 200 then Alcotest.fail "fleet simulation did not converge";
    let g = lease t ~worker:(Printf.sprintf "sim%d" !steps) in
    if Json.mem_bool "idle" g = Some true then begin
      let _, v = call t ~meth:"GET" ("/api/jobs/" ^ job) None in
      if Json.mem_str "state" v = Some "running" then begin
        (* everything leased to dead workers: let the leases expire *)
        now := !now +. 60.;
        drive ()
      end
      else v
    end
    else begin
      let shard = jint "shard" g and count = jint "shards" g in
      let resume_path =
        match Json.mem "resume" g with
        | Some (Json.Obj _ as r) ->
            let path = Filename.temp_file "s4e_fleet_resume" ".jsonl" in
            let oc = open_out_bin path in
            output_string oc (jstr "header" r);
            output_char oc '\n';
            List.iter
              (fun l ->
                output_string oc (Option.get (Json.str l));
                output_char oc '\n')
              (Option.get (Json.mem_list "lines" r));
            close_out oc;
            Some path
        | _ -> None
      in
      let produced = ref [] in
      (match
         Flows.fault_campaign ?resume:resume_path ~shard:(shard, count)
           ~on_journal_line:(fun l -> produced := l :: !produced)
           cfg p
       with
      | Ok r -> Alcotest.(check bool) "sim shard complete" true r.Flows.ff_complete
      | Error e -> Alcotest.failf "sim shard failed: %s" e);
      Option.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) resume_path;
      let lines = List.rev !produced in
      let die = !deaths > 0 && !steps mod 2 = 1 in
      let delivered =
        if die then begin
          decr deaths;
          (* lose an un-posted tail: deliver only half the stream *)
          List.filteri (fun i _ -> i <= List.length lines / 2) lines
        end
        else lines
      in
      let _ = post_records t ~lease:(jstr "lease" g) ~lines:delivered in
      if die then now := !now +. 60. (* vanish; the lease expires *)
      else begin
        let st, _ =
          call t "/api/complete"
            (Some (Json.Obj [ ("lease", Json.String (jstr "lease" g)) ]))
        in
        Alcotest.(check int) "sim complete accepted" 200 st
      end;
      drive ()
    end
  in
  let final = drive () in
  let merged = Filename.concat dir (job ^ ".jsonl") in
  let result =
    match Json.mem_str "state" final with
    | Some "done" -> Journal.read merged
    | Some s -> Error ("job ended " ^ s)
    | None -> Error "no final state"
  in
  (try Sys.remove merged with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  result

let fleet_determinism =
  prop ~count:5 "sharded fleet with worker deaths = unsharded campaign"
    QCheck.(triple (int_range 1 4) (int_range 0 3) (int_range 1 500))
    (fun (shards, deaths, seed) ->
      let n = 12 in
      let p = fleet_program () in
      let cfg = flow_cfg ~seed ~n in
      let reference = Flows.fault_flow cfg p in
      match run_fleet_simulation ~shards ~seed ~n ~deaths with
      | Error e -> QCheck.Test.fail_reportf "simulation failed: %s" e
      | Ok (h, records) ->
          let key r =
            ( r.Journal.r_index,
              S4e_fault.Fault.to_string r.Journal.r_fault,
              Campaign.outcome_name r.Journal.r_outcome )
          in
          let got = List.map key records in
          let want =
            List.map
              (fun (i, f, o) ->
                (i, S4e_fault.Fault.to_string f, Campaign.outcome_name o))
              reference.Flows.ff_indexed
          in
          h.Journal.j_total = n
          && h.Journal.j_shard = (0, 1)
          && got = want)

(* ---------------- process gauges ---------------- *)

let test_process_gauges () =
  let reg = S4e_obs.Metrics.create () in
  S4e_obs.Metrics.register_process_gauges reg;
  let snap = S4e_obs.Metrics.snapshot reg in
  let get name =
    match List.assoc_opt name snap with
    | Some v -> v
    | None -> Alcotest.failf "gauge %s missing" name
  in
  (match get "process.gc_heap_words" with
  | S4e_obs.Metrics.Int w -> Alcotest.(check bool) "heap words > 0" true (w > 0)
  | _ -> Alcotest.fail "heap words not an int");
  (match get "process.max_rss_kb" with
  | S4e_obs.Metrics.Int kb ->
      (* VmHWM is available on Linux; elsewhere the gauge reads 0 *)
      Alcotest.(check bool) "max rss sane" true (kb >= 0)
  | _ -> Alcotest.fail "max rss not an int");
  match get "process.uptime_s" with
  | S4e_obs.Metrics.Float s -> Alcotest.(check bool) "uptime sane" true (s >= 0.)
  | _ -> Alcotest.fail "uptime not a float"

let () =
  Alcotest.run "fleet"
    [ ( "json",
        [ json_roundtrip;
          Alcotest.test_case "parse strictness" `Quick
            test_json_parse_strictness;
          Alcotest.test_case "reads journal lines" `Quick
            test_json_reads_journal_lines ] );
      ( "http",
        [ Alcotest.test_case "roundtrip over pipe" `Quick
            test_http_roundtrip_over_pipe;
          Alcotest.test_case "address parsing" `Quick test_addr_parsing ] );
      ( "lease",
        [ Alcotest.test_case "lifecycle" `Quick test_lease_lifecycle ] );
      ( "server",
        [ Alcotest.test_case "happy path" `Quick test_server_happy_path;
          Alcotest.test_case "expiry + resume + dup" `Quick
            test_server_expiry_resume_and_dup;
          Alcotest.test_case "conflict fails job" `Quick
            test_server_conflict_fails_job;
          Alcotest.test_case "fairness across jobs" `Quick
            test_server_fairness_across_jobs ] );
      ( "fleet",
        [ fleet_determinism;
          Alcotest.test_case "process gauges" `Quick test_process_gauges ] ) ]
