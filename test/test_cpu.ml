(* CPU tests: architectural state, single-instruction semantics, traps,
   CSRs, interrupts, the TB cache, and machine-level runs. *)

open S4e_isa
module Machine = S4e_cpu.Machine
module State = S4e_cpu.Arch_state
module Exec = S4e_cpu.Exec
module Trap = S4e_cpu.Trap
module Bus = S4e_mem.Bus

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:300 gen f)

(* run one instruction on a fresh state/bus *)
let step ?(pc = 0x8000_0000) ?(setup = fun _ _ -> ()) instr =
  let st = State.create ~pc () in
  let bus = Bus.create () in
  setup st bus;
  let taken = Exec.execute st bus ~size:4 instr in
  (st, bus, taken)

let reg_is st r v =
  Alcotest.(check int) (Printf.sprintf "x%d" r) v (State.get_reg st r)

(* ---------------- state ---------------- *)

let test_x0_hardwired () =
  let st = State.create () in
  State.set_reg st 0 123;
  Alcotest.(check int) "x0 stays zero" 0 (State.get_reg st 0);
  State.set_reg st 5 0x1_2345_6789;
  Alcotest.(check int) "values masked" 0x2345_6789 (State.get_reg st 5)

let test_state_copy () =
  let st = State.create () in
  State.set_reg st 7 42;
  st.State.mscratch <- 9;
  let c = State.copy st in
  State.set_reg st 7 1;
  st.State.mscratch <- 0;
  Alcotest.(check int) "copied reg" 42 (State.get_reg c 7);
  Alcotest.(check int) "copied csr" 9 c.State.mscratch

let test_csr_file () =
  let st = State.create () in
  Alcotest.(check (option unit)) "mscratch write" (Some ())
    (State.csr_write st Csr.mscratch 0xABCD);
  Alcotest.(check (option int)) "mscratch read" (Some 0xABCD)
    (State.csr_read st Csr.mscratch);
  Alcotest.(check (option unit)) "read-only rejected" None
    (State.csr_write st Csr.cycle 0);
  Alcotest.(check (option int)) "unknown csr" None (State.csr_read st 0x123);
  Alcotest.(check (option unit)) "mtvec aligned" (Some ())
    (State.csr_write st Csr.mtvec 0x8000_0003);
  Alcotest.(check (option int)) "mtvec low bits cleared" (Some 0x8000_0000)
    (State.csr_read st Csr.mtvec);
  st.State.cycle <- 0x1_0000_0002;
  Alcotest.(check (option int)) "cycle lo" (Some 2) (State.csr_read st Csr.cycle);
  Alcotest.(check (option int)) "cycleh" (Some 1) (State.csr_read st Csr.cycleh)

(* ---------------- ALU semantics vs the bits library ---------------- *)

let alu_matches_bits =
  prop "Op semantics match Bits"
    (QCheck.triple Gen.instr Gen.word32 Gen.word32)
    (fun (i, a, b) ->
      match i with
      | Instr.Op (op, rd, rs1, rs2) when rd <> 0 && rs1 <> rs2 && rs1 <> 0 && rs2 <> 0 ->
          let st, _, _ =
            step
              ~setup:(fun st _ ->
                State.set_reg st rs1 a;
                State.set_reg st rs2 b)
              i
          in
          let expected =
            let open S4e_bits.Bits in
            match op with
            | Instr.ADD -> add a b
            | SUB -> sub a b
            | SLL -> sll a b
            | SLT -> if lt_signed a b then 1 else 0
            | SLTU -> if lt_unsigned a b then 1 else 0
            | XOR -> logxor a b
            | SRL -> srl a b
            | SRA -> sra a b
            | OR -> logor a b
            | AND -> logand a b
            | MUL -> mul a b
            | MULH -> mulh a b
            | MULHSU -> mulhsu a b
            | MULHU -> mulhu a b
            | DIV -> div a b
            | DIVU -> divu a b
            | REM -> rem a b
            | REMU -> remu a b
            | ANDN -> andn a b
            | ORN -> orn a b
            | XNOR -> xnor a b
            | ROL -> rol a b
            | ROR -> ror a b
            | MIN -> min_signed a b
            | MAX -> max_signed a b
            | MINU -> min_unsigned a b
            | MAXU -> max_unsigned a b
            | BSET -> bset a b
            | BCLR -> bclr a b
            | BINV -> binv a b
            | BEXT -> bext a b
          in
          State.get_reg st rd = expected
      | _ -> true)

let unary_matches_bits =
  prop "Unary/Op_imm/Shift semantics match Bits"
    (QCheck.pair Gen.instr Gen.word32)
    (fun (i, a) ->
      let open S4e_bits.Bits in
      match i with
      | Instr.Unary (op, rd, rs1) when rd <> 0 && rs1 <> 0 ->
          let st, _, _ =
            step ~setup:(fun st _ -> State.set_reg st rs1 a) i
          in
          let expected =
            match op with
            | Instr.CLZ -> clz a
            | CTZ -> ctz a
            | CPOP -> popcount a
            | SEXT_B -> sext ~width:8 a
            | SEXT_H -> sext ~width:16 a
            | ZEXT_H -> zext ~width:16 a
            | REV8 -> rev8 a
            | ORC_B -> orc_b a
          in
          State.get_reg st rd = expected
      | Instr.Op_imm (op, rd, rs1, imm) when rd <> 0 && rs1 <> 0 ->
          let st, _, _ =
            step ~setup:(fun st _ -> State.set_reg st rs1 a) i
          in
          let b = of_signed imm in
          let expected =
            match op with
            | Instr.ADDI -> add a b
            | SLTI -> if lt_signed a b then 1 else 0
            | SLTIU -> if lt_unsigned a b then 1 else 0
            | XORI -> logxor a b
            | ORI -> logor a b
            | ANDI -> logand a b
          in
          State.get_reg st rd = expected
      | Instr.Shift_imm (op, rd, rs1, sh) when rd <> 0 && rs1 <> 0 ->
          let st, _, _ =
            step ~setup:(fun st _ -> State.set_reg st rs1 a) i
          in
          let expected =
            match op with
            | Instr.SLLI -> sll a sh
            | SRLI -> srl a sh
            | SRAI -> sra a sh
            | RORI -> ror a sh
            | BSETI -> bset a sh
            | BCLRI -> bclr a sh
            | BINVI -> binv a sh
            | BEXTI -> bext a sh
          in
          State.get_reg st rd = expected
      | _ -> true)

let test_directed_exec () =
  (* lui/auipc *)
  let st, _, _ = step (Instr.Lui (5, 0x12345)) in
  reg_is st 5 0x12345000;
  let st, _, _ = step ~pc:0x8000_0100 (Instr.Auipc (5, 0x1)) in
  reg_is st 5 0x8000_1100;
  (* jal writes the link and jumps *)
  let st, _, _ = step ~pc:0x8000_0000 (Instr.Jal (1, 16)) in
  reg_is st 1 0x8000_0004;
  Alcotest.(check int) "jal target" 0x8000_0010 st.State.pc;
  (* jalr clears bit 0 *)
  let st, _, _ =
    step
      ~setup:(fun st _ -> State.set_reg st 6 0x8000_0101)
      (Instr.Jalr (1, 6, 2))
  in
  Alcotest.(check int) "jalr target even" 0x8000_0102 st.State.pc;
  (* branch taken/not-taken *)
  let st, _, taken =
    step
      ~setup:(fun st _ -> State.set_reg st 5 1)
      (Instr.Branch (BNE, 5, 0, 8))
  in
  Alcotest.(check bool) "taken" true taken;
  Alcotest.(check int) "branch target" 0x8000_0008 st.State.pc;
  let st, _, taken = step (Instr.Branch (BNE, 0, 0, 8)) in
  Alcotest.(check bool) "not taken" false taken;
  Alcotest.(check int) "fallthrough" 0x8000_0004 st.State.pc

let test_loads_stores () =
  let st, bus, _ =
    step
      ~setup:(fun st bus ->
        State.set_reg st 5 0x9000_0000;
        Bus.write32 bus 0x9000_0000 0xFFFF_FF80)
      (Instr.Load (LB, 6, 5, 0))
  in
  ignore bus;
  reg_is st 6 0xFFFF_FF80;  (* sign extended *)
  let st, _, _ =
    step
      ~setup:(fun st bus ->
        State.set_reg st 5 0x9000_0000;
        Bus.write32 bus 0x9000_0000 0x8081)
      (Instr.Load (LHU, 6, 5, 0))
  in
  reg_is st 6 0x8081;  (* zero extended *)
  let _, bus, _ =
    step
      ~setup:(fun st _ ->
        State.set_reg st 5 0x9000_0000;
        State.set_reg st 6 0xAABBCCDD)
      (Instr.Store (SH, 6, 5, 4))
  in
  Alcotest.(check int) "sh stores low half" 0xCCDD (Bus.read16 bus 0x9000_0004)

let test_misaligned_traps () =
  let expect_trap name instr setup =
    match step ~setup instr with
    | exception Trap.Exn _ -> ()
    | _ -> Alcotest.failf "%s should have trapped" name
  in
  expect_trap "lw misaligned" (Instr.Load (LW, 6, 5, 1)) (fun st _ ->
      State.set_reg st 5 0x9000_0000);
  expect_trap "lh misaligned" (Instr.Load (LH, 6, 5, 1)) (fun st _ ->
      State.set_reg st 5 0x9000_0000);
  expect_trap "sw misaligned" (Instr.Store (SW, 6, 5, 2)) (fun st _ ->
      State.set_reg st 5 0x9000_0000);
  expect_trap "ecall" Instr.Ecall (fun _ _ -> ());
  expect_trap "ebreak" Instr.Ebreak (fun _ _ -> ())

let test_csr_instr_semantics () =
  (* csrrw swaps *)
  let st, _, _ =
    step
      ~setup:(fun st _ ->
        st.State.mscratch <- 7;
        State.set_reg st 5 9)
      (Instr.Csr (CSRRW, 6, Csr.mscratch, 5))
  in
  reg_is st 6 7;
  Alcotest.(check int) "written" 9 st.State.mscratch;
  (* csrrs with x0 does not write *)
  let st, _, _ =
    step
      ~setup:(fun st _ -> st.State.mscratch <- 5)
      (Instr.Csr (CSRRS, 6, Csr.mscratch, 0))
  in
  reg_is st 6 5;
  Alcotest.(check int) "unchanged" 5 st.State.mscratch;
  (* csrrci clears bits *)
  let st, _, _ =
    step
      ~setup:(fun st _ -> st.State.mscratch <- 0b1111)
      (Instr.Csr (CSRRCI, 6, Csr.mscratch, 0b0101))
  in
  Alcotest.(check int) "cleared" 0b1010 st.State.mscratch;
  (* access to an unimplemented CSR traps *)
  (match step (Instr.Csr (CSRRW, 6, 0x123, 5)) with
  | exception Trap.Exn (Trap.Illegal_instruction _) -> ()
  | _ -> Alcotest.fail "unimplemented CSR should trap");
  (* write to a read-only CSR traps, but reading via csrrs x0 is fine *)
  (match step (Instr.Csr (CSRRW, 6, Csr.cycle, 5)) with
  | exception Trap.Exn (Trap.Illegal_instruction _) -> ()
  | _ -> Alcotest.fail "read-only CSR write should trap");
  let st, _, _ = step (Instr.Csr (CSRRS, 6, Csr.mhartid, 0)) in
  reg_is st 6 0

(* ---------------- FP semantics ---------------- *)

let test_fp_basic () =
  let bits_of f = S4e_bits.Bits.of_int32 (Int32.bits_of_float f) in
  let st, _, _ =
    step
      ~setup:(fun st _ ->
        State.set_freg st 1 (bits_of 1.5);
        State.set_freg st 2 (bits_of 2.25))
      (Instr.Fp_op (FADD, 3, 1, 2))
  in
  Alcotest.(check int) "1.5 + 2.25" (bits_of 3.75) (State.get_freg st 3);
  let st, _, _ =
    step
      ~setup:(fun st _ ->
        State.set_freg st 1 (bits_of 2.0);
        State.set_freg st 2 (bits_of 3.0))
      (Instr.Fp_cmp (FLT, 5, 1, 2))
  in
  reg_is st 5 1;
  (* NaN handling: compares are false, min returns the other operand *)
  let nan_bits = 0x7FC00000 in
  let st, _, _ =
    step
      ~setup:(fun st _ ->
        State.set_freg st 1 nan_bits;
        State.set_freg st 2 (bits_of 1.0))
      (Instr.Fp_cmp (FEQ, 5, 1, 2))
  in
  reg_is st 5 0;
  let st, _, _ =
    step
      ~setup:(fun st _ ->
        State.set_freg st 1 nan_bits;
        State.set_freg st 2 (bits_of 1.0))
      (Instr.Fp_op (FMIN, 3, 1, 2))
  in
  Alcotest.(check int) "fmin ignores NaN" (bits_of 1.0) (State.get_freg st 3);
  (* conversions saturate *)
  let st, _, _ =
    step
      ~setup:(fun st _ -> State.set_freg st 1 (bits_of 3.0e9))
      (Instr.Fcvt_w_s (5, 1, false))
  in
  reg_is st 5 0x7FFF_FFFF;
  let st, _, _ =
    step
      ~setup:(fun st _ -> State.set_freg st 1 (bits_of (-1.0)))
      (Instr.Fcvt_w_s (5, 1, true))
  in
  reg_is st 5 0;
  (* fmv roundtrip *)
  let st, _, _ =
    step
      ~setup:(fun st _ -> State.set_reg st 5 0x12345678)
      (Instr.Fmv_w_x (1, 5))
  in
  Alcotest.(check int) "fmv.w.x" 0x12345678 (State.get_freg st 1)

let state_canonical_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"architectural state stays canonical" ~count:40
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 50_000))
       (fun seed ->
         let p =
           S4e_torture.Torture.generate
             { S4e_torture.Torture.default_config with seed; segments = 12 }
         in
         let m = Machine.create () in
         S4e_asm.Program.load_machine p m;
         let _ = Machine.run m ~fuel:100_000 in
         let st = m.Machine.state in
         let canonical v = v >= 0 && v <= 0xFFFF_FFFF in
         st.State.regs.(0) = 0
         && Array.for_all canonical st.State.regs
         && Array.for_all canonical st.State.fregs
         && canonical st.State.pc
         && canonical st.State.mstatus
         && st.State.cycle >= st.State.instret))

let fp_props =
  [ prop "fadd matches single-precision double detour"
      (QCheck.pair Gen.word32 Gen.word32)
      (fun (a, b) ->
        let to_f x = Int32.float_of_bits (S4e_bits.Bits.to_int32 x) in
        QCheck.assume
          ((not (Float.is_nan (to_f a))) && not (Float.is_nan (to_f b)));
        let st, _, _ =
          step
            ~setup:(fun st _ ->
              State.set_freg st 1 a;
              State.set_freg st 2 b)
            (Instr.Fp_op (FADD, 3, 1, 2))
        in
        let expect = Int32.bits_of_float (to_f a +. to_f b) in
        let got = State.get_freg st 3 in
        (* NaN results are canonicalized *)
        Float.is_nan (to_f a +. to_f b)
        || got = S4e_bits.Bits.of_int32 expect);
    prop "fsgnj moves only the sign" (QCheck.pair Gen.word32 Gen.word32)
      (fun (a, b) ->
        let st, _, _ =
          step
            ~setup:(fun st _ ->
              State.set_freg st 1 a;
              State.set_freg st 2 b)
            (Instr.Fp_op (FSGNJ, 3, 1, 2))
        in
        let r = State.get_freg st 3 in
        r land 0x7FFF_FFFF = a land 0x7FFF_FFFF
        && r land 0x8000_0000 = b land 0x8000_0000);
    prop "fcvt.s.w exact for small ints" (QCheck.int_range (-1000000) 1000000)
      (fun v ->
        let st, _, _ =
          step
            ~setup:(fun st _ -> State.set_reg st 5 (S4e_bits.Bits.of_signed v))
            (Instr.Fcvt_s_w (1, 5, false))
        in
        let back =
          Int32.float_of_bits (S4e_bits.Bits.to_int32 (State.get_freg st 1))
        in
        back = float_of_int v) ]

(* ---------------- machine-level ---------------- *)

let run_asm ?config ?(fuel = 100_000) src =
  let p = S4e_asm.Assembler.assemble_exn src in
  let m = Machine.create ?config () in
  S4e_asm.Program.load_machine p m;
  let stop = Machine.run m ~fuel in
  (m, stop)

let exit_code = function
  | Machine.Exited c -> c
  | stop ->
      Alcotest.failf "expected exit, got %a" Machine.pp_stop_reason stop

let test_fp_special_values () =
  let bits_of f = S4e_bits.Bits.of_int32 (Int32.bits_of_float f) in
  (* division by zero produces infinity and raises DZ *)
  let st, _, _ =
    step
      ~setup:(fun st _ ->
        State.set_freg st 1 (bits_of 1.0);
        State.set_freg st 2 (bits_of 0.0))
      (Instr.Fp_op (FDIV, 3, 1, 2))
  in
  Alcotest.(check int) "1/0 = +inf" 0x7F800000 (State.get_freg st 3);
  Alcotest.(check bool) "DZ flag" true (st.State.fcsr land 0x08 <> 0);
  (* sqrt of a negative is the canonical NaN with NV *)
  let st, _, _ =
    step
      ~setup:(fun st _ -> State.set_freg st 1 (bits_of (-4.0)))
      (Instr.Fsqrt (3, 1))
  in
  Alcotest.(check int) "sqrt(-4) canonical NaN" 0x7FC00000 (State.get_freg st 3);
  Alcotest.(check bool) "NV flag" true (st.State.fcsr land 0x10 <> 0);
  (* fmin orders -0.0 below +0.0 *)
  let st, _, _ =
    step
      ~setup:(fun st _ ->
        State.set_freg st 1 0x8000_0000;  (* -0.0 *)
        State.set_freg st 2 0x0000_0000)
      (Instr.Fp_op (FMIN, 3, 1, 2))
  in
  Alcotest.(check int) "fmin(-0,+0) = -0" 0x8000_0000 (State.get_freg st 3)

let test_interrupt_priority () =
  (* with both software and timer pending, software wins *)
  let _, stop =
    run_asm {|
  .equ CLINT, 0x02000000
_start:
  la   t0, handler
  csrw mtvec, t0
  # make the timer already pending: mtimecmp = 0
  li   t1, CLINT + 0x4000
  sw   zero, 0(t1)
  sw   zero, 4(t1)
  # raise the software interrupt too
  li   t2, 1
  li   t3, CLINT
  sw   t2, 0(t3)
  # enable both and take one
  li   t4, 0x888
  csrw mie, t4
  csrrsi zero, mstatus, 8
spin:
  nop
  j    spin
handler:
  csrr a0, mcause
  li   t5, 0x00100000
  sw   a0, 0(t5)
  mret
|}
  in
  (* mcause = interrupt bit | 3 (machine software interrupt) *)
  Alcotest.(check int) "software interrupt first" 0x80000003 (exit_code stop)

let test_machine_trap_handler () =
  let _, stop =
    run_asm {|
_start:
  la   t0, handler
  csrw mtvec, t0
  ecall                  # -> handler, which bumps a0
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
handler:
  addi a0, a0, 55
  csrr t2, mepc
  addi t2, t2, 4
  csrw mepc, t2
  mret
|}
  in
  Alcotest.(check int) "handler ran" 55 (exit_code stop)

let test_machine_fatal_trap () =
  let _, stop = run_asm {|
_start:
  ecall
|} in
  match stop with
  | Machine.Fatal_trap (Trap.Ecall_from_m, pc) ->
      Alcotest.(check int) "faulting pc" 0x8000_0000 pc
  | _ -> Alcotest.failf "expected fatal trap, got %a" Machine.pp_stop_reason stop

let test_machine_illegal () =
  let _, stop = run_asm {|
_start:
  .word 0x00000057
|} in
  match stop with
  | Machine.Fatal_trap (Trap.Illegal_instruction w, _) ->
      Alcotest.(check int) "offending word" 0x57 w
  | _ -> Alcotest.fail "expected illegal instruction"

let test_machine_timer_interrupt () =
  let _, stop =
    run_asm {|
  .equ CLINT, 0x02000000
_start:
  la   t0, handler
  csrw mtvec, t0
  # mtimecmp = 50 (mtime is still near zero)
  li   t1, CLINT
  li   t2, 50
  li   t5, CLINT + 0x4000
  sw   t2, 0(t5)          # mtimecmp lo = 50
  sw   zero, 4(t5)        # mtimecmp hi = 0
  # enable timer interrupt
  li   t6, 0x80
  csrw mie, t6
  csrrsi zero, mstatus, 8 # set MIE
wait:
  wfi
  j    wait
handler:
  li   t1, 0x00100000
  li   t2, 77
  sw   t2, 0(t1)
  mret
|}
  in
  Alcotest.(check int) "woken by timer" 77 (exit_code stop)

let test_machine_wfi_halt () =
  let _, stop = run_asm {|
_start:
  wfi
|} in
  match stop with
  | Machine.Wfi_halt -> ()
  | _ -> Alcotest.failf "expected wfi halt, got %a" Machine.pp_stop_reason stop

let test_machine_out_of_fuel () =
  let _, stop = run_asm ~fuel:100 {|
_start:
spin:
  j spin
|} in
  match stop with
  | Machine.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_fence_i_self_modifying () =
  (* the program overwrites an addi 0 with addi 1 ahead of the pc, runs
     fence.i, and must observe the new code *)
  let _, stop =
    run_asm {|
_start:
  la   t0, patch_site
  # build "addi a0, a0, 1" = 0x00150513
  li   t1, 0x00150513
  sw   t1, 0(t0)
  fence.i
  li   a0, 0
patch_site:
  addi a0, a0, 0
  li   t2, 0x00100000
  sw   a0, 0(t2)
  ebreak
|}
  in
  Alcotest.(check int) "patched code executed" 1 (exit_code stop)

let test_page_granular_invalidation () =
  (* self-modifying code with NO fence.i: the store alone must kill the
     already-cached block it overwrites (page-granular invalidation),
     while unrelated cached blocks survive.  The slot runs twice: the
     first pass executes the original addi+1, then patches itself to
     addi+99, so exit code 100 proves the second pass saw fresh code. *)
  let m, stop =
    run_asm {|
_start:
  li   s0, 2
  li   a0, 0
  la   t0, patch
  lw   t1, 0(t0)
loop:
slot:
  addi a0, a0, 1
  addi s0, s0, -1
  beqz s0, done
  la   t2, slot
  sw   t1, 0(t2)
  j    loop
done:
  li   t3, 0x00100000
  sw   a0, 0(t3)
patch:
  addi a0, a0, 99
|}
  in
  Alcotest.(check int) "patched code executed without fence.i" 100
    (exit_code stop);
  let tb = m.Machine.tb in
  (* exactly the block overlapping the stored word died; no flush *)
  Alcotest.(check int) "one block invalidated"
    1 (S4e_cpu.Tb_cache.stats tb).S4e_cpu.Tb_cache.st_invalidations;
  let blocks = (S4e_cpu.Tb_cache.stats tb).S4e_cpu.Tb_cache.st_blocks in
  Alcotest.(check bool) "unrelated blocks survive" true (blocks >= 2)

let test_decoder_configs_agree () =
  (* the same torture program must produce identical results under all
     four decoder/TB-cache configurations *)
  let p =
    S4e_torture.Torture.generate
      { S4e_torture.Torture.default_config with seed = 99 }
  in
  let run config =
    let m = Machine.create ~config () in
    S4e_asm.Program.load_machine p m;
    let stop = Machine.run m ~fuel:100_000 in
    (stop, Machine.instret m)
  in
  let combos =
    [ { Machine.default_config with Machine.use_tb_cache = true;
        decoder = Machine.Decodetree_decoder };
      { Machine.default_config with Machine.use_tb_cache = false;
        decoder = Machine.Decodetree_decoder };
      { Machine.default_config with Machine.use_tb_cache = true;
        decoder = Machine.Hand_decoder };
      { Machine.default_config with Machine.use_tb_cache = false;
        decoder = Machine.Hand_decoder } ]
  in
  match List.map run combos with
  | first :: rest ->
      List.iteri
        (fun i r ->
          Alcotest.(check bool)
            (Printf.sprintf "config %d equals config 0" (i + 1))
            true (r = first))
        rest
  | [] -> assert false

let test_restricted_isa_traps () =
  (* running an M instruction on an RV32I-only machine must trap *)
  let config =
    { Machine.default_config with
      Machine.isa = [ Isa_module.I; Isa_module.Zicsr ] }
  in
  let _, stop =
    run_asm ~config {|
_start:
  li a0, 6
  li a1, 7
  mul a2, a0, a1
|}
  in
  match stop with
  | Machine.Fatal_trap (Trap.Illegal_instruction _, _) -> ()
  | _ -> Alcotest.failf "expected illegal on RV32I, got %a"
           Machine.pp_stop_reason stop

let test_tb_cache_stats () =
  let m = Machine.create () in
  let p =
    S4e_asm.Assembler.assemble_exn {|
_start:
  li   t0, 0
  li   t1, 100
loop:
  addi t0, t0, 1
  blt  t0, t1, loop
  li   t2, 0x00100000
  sw   zero, 0(t2)
  ebreak
|}
  in
  S4e_asm.Program.load_machine p m;
  let _ = Machine.run m ~fuel:10_000 in
  let ts = S4e_cpu.Tb_cache.stats m.Machine.tb in
  (* chained successor lookups bypass the hashtable entirely *)
  let chained = ts.S4e_cpu.Tb_cache.st_chain_hits in
  Alcotest.(check bool) "few blocks" true (ts.S4e_cpu.Tb_cache.st_blocks <= 5);
  Alcotest.(check bool) "mostly hits" true
    (ts.S4e_cpu.Tb_cache.st_hits + chained
    > ts.S4e_cpu.Tb_cache.st_misses * 10);
  Alcotest.(check bool) "chaining engaged" true (chained > 0)

let test_atomics () =
  (* lr/sc success and failure, and a representative amo *)
  let _, stop =
    run_asm {|
_start:
  la   a0, cell
  lr.w a1, (a0)          # a1 = 7, reservation set
  addi a1, a1, 1
  sc.w a2, a1, (a0)      # succeeds: a2 = 0, cell = 8
  sc.w a3, a1, (a0)      # fails: a3 = 1 (reservation consumed)
  li   a4, 5
  amoadd.w a5, a4, (a0)  # a5 = 8, cell = 13
  lw   a6, 0(a0)
  # result = a2*1000 + a3*100 + (a6 == 13)
  li   t0, 1000
  mul  a2, a2, t0
  li   t0, 100
  mul  a3, a3, t0
  li   t1, 13
  xor  a6, a6, t1
  seqz a6, a6
  add  a0, a2, a3
  add  a0, a0, a6
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
  .data
cell:
  .word 7
|}
  in
  (* expect sc success (0*1000) + sc failure (1*100) + cell==13 (1) *)
  Alcotest.(check int) "atomics semantics" 101 (exit_code stop)

let test_amo_misaligned_traps () =
  let _, stop =
    run_asm {|
_start:
  li   a0, 0x80001001
  li   a1, 1
  amoadd.w a2, a1, (a0)
|}
  in
  match stop with
  | Machine.Fatal_trap (Trap.Misaligned_store _, _) -> ()
  | _ -> Alcotest.failf "expected misaligned trap, got %a"
           Machine.pp_stop_reason stop

let test_sc_wrong_address_fails () =
  let _, stop =
    run_asm {|
_start:
  la   a0, cell
  la   a1, other
  lr.w a2, (a0)          # reserve cell
  li   a3, 9
  sc.w a4, a3, (a1)      # different address: must fail
  lw   a5, 0(a1)         # other must be unchanged (42)
  # result = a4*100 + (a5 == 42)
  li   t0, 100
  mul  a4, a4, t0
  li   t1, 42
  xor  a5, a5, t1
  seqz a5, a5
  add  a0, a4, a5
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
  .data
cell:
  .word 7
other:
  .word 42
|}
  in
  Alcotest.(check int) "sc to wrong address fails, memory intact" 101
    (exit_code stop)

let test_load_use_hazard_cycles () =
  (* same instruction count; the dependent sequence stalls once *)
  let dependent = {|
_start:
  la   t0, v
  lw   a0, 0(t0)
  addi a0, a0, 1        # consumes the load result immediately
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
  .data
v:
  .word 41
|} in
  let independent = {|
_start:
  la   t0, v
  lw   a0, 0(t0)
  addi a1, t0, 1        # does not touch a0
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
  .data
v:
  .word 41
|} in
  let cycles src =
    let m, stop = run_asm src in
    (match stop with Machine.Exited _ -> () | _ -> Alcotest.fail "no exit");
    Machine.cycles m
  in
  let dep = cycles dependent and indep = cycles independent in
  Alcotest.(check int) "one stall cycle"
    Machine.default_config.Machine.timing.S4e_cpu.Timing_model.load_use_hazard
    (dep - indep);
  (* disabling hazards removes the difference *)
  let config =
    { Machine.default_config with
      Machine.timing =
        S4e_cpu.Timing_model.without_hazards Machine.default_config.Machine.timing }
  in
  let cycles_nh src =
    let m, _ = run_asm ~config src in
    Machine.cycles m
  in
  Alcotest.(check int) "no difference without hazards" 0
    (cycles_nh dependent - cycles_nh independent)

let test_tracer () =
  let p =
    S4e_asm.Assembler.assemble_exn {|
_start:
  li   t0, 0
  li   t1, 3
loop:
  addi t0, t0, 1
  blt  t0, t1, loop
  call f
  li   t2, 0x00100000
  sw   zero, 0(t2)
  ebreak
f:
  ret
|}
  in
  let m = Machine.create () in
  let tracer = S4e_cpu.Tracer.attach m.Machine.hooks ~depth:4 in
  S4e_asm.Program.load_machine p m;
  (match Machine.run m ~fuel:1_000 with
  | Machine.Exited 0 -> ()
  | stop -> Alcotest.failf "run failed: %a" Machine.pp_stop_reason stop);
  let s = S4e_cpu.Tracer.stats tracer in
  Alcotest.(check int) "instructions counted" (Machine.instret m)
    s.S4e_cpu.Tracer.st_instructions;
  Alcotest.(check int) "three branch executions" 3 s.S4e_cpu.Tracer.st_branches;
  Alcotest.(check int) "two taken" 2 s.S4e_cpu.Tracer.st_taken;
  Alcotest.(check int) "one call" 1 s.S4e_cpu.Tracer.st_calls;
  Alcotest.(check int) "one return" 1 s.S4e_cpu.Tracer.st_returns;
  Alcotest.(check int) "tail bounded" 4
    (List.length (S4e_cpu.Tracer.tail tracer));
  (* last traced instruction is the store (ebreak never runs) *)
  (match List.rev (S4e_cpu.Tracer.tail tracer) with
  | last :: _ ->
      Alcotest.(check string) "last is the exit store" "sw"
        (S4e_isa.Instr.mnemonic last.S4e_cpu.Tracer.e_instr)
  | [] -> Alcotest.fail "empty tail");
  S4e_cpu.Tracer.detach m.Machine.hooks tracer

let test_cache_model_unit () =
  let module C = S4e_cpu.Cache_model in
  let geo = C.geometry ~ways:2 ~line_bytes:16 ~total_bytes:128 () in
  Alcotest.(check int) "derived sets" 4 geo.C.g_sets;
  Alcotest.(check int) "size roundtrip" 128 (C.size_bytes geo);
  let c = C.create geo in
  (* cold miss, then hits within the same line *)
  Alcotest.(check bool) "cold miss" false (C.access c 0x100);
  Alcotest.(check bool) "same-line hit" true (C.access c 0x10f);
  Alcotest.(check bool) "next line misses" false (C.access c 0x110);
  (* two-way set: two conflicting lines coexist, a third evicts LRU *)
  let conflict n = 0x1000 + (n * 16 * geo.C.g_sets) in
  ignore (C.access c (conflict 0));
  ignore (C.access c (conflict 1));
  Alcotest.(check bool) "way 0 still resident" true (C.access c (conflict 0));
  ignore (C.access c (conflict 2));  (* evicts conflict 1 (LRU) *)
  Alcotest.(check bool) "way survives" true (C.access c (conflict 0));
  Alcotest.(check bool) "LRU victim gone" false (C.access c (conflict 1));
  let s = C.stats c in
  Alcotest.(check int) "accesses" 9 s.C.st_accesses;
  Alcotest.(check int) "partition" s.C.st_accesses (s.C.st_hits + s.C.st_misses);
  C.reset c;
  Alcotest.(check int) "reset" 0 (C.stats c).C.st_accesses;
  Alcotest.check_raises "bad geometry"
    (Invalid_argument
       "Cache_model.geometry: line size must be a power of two >= 4")
    (fun () -> ignore (C.geometry ~line_bytes:24 ~total_bytes:96 ()))

let test_cache_model_attached () =
  let module C = S4e_cpu.Cache_model in
  let p =
    S4e_asm.Assembler.assemble_exn {|
_start:
  li   s0, 0
  li   s1, 500
  la   s2, buf
lp:
  andi a0, s0, 31
  slli a0, a0, 2
  add  a1, s2, a0
  sw   s0, 0(a1)
  lw   a2, 0(a1)
  addi s0, s0, 1
  blt  s0, s1, lp
  li   t1, 0x00100000
  sw   zero, 0(t1)
  ebreak
  .data
buf:
  .space 128
|}
  in
  let m = Machine.create () in
  let caches = C.attach m in
  S4e_asm.Program.load_machine p m;
  (match Machine.run m ~fuel:100_000 with
  | Machine.Exited 0 -> ()
  | stop -> Alcotest.failf "run: %a" Machine.pp_stop_reason stop);
  let ic = C.icache_stats caches and dc = C.dcache_stats caches in
  Alcotest.(check int) "icache saw every instruction" (Machine.instret m)
    ic.C.st_accesses;
  (* a tight loop is almost entirely I-cache hits *)
  Alcotest.(check bool) "icache hit rate > 99%" true (C.hit_rate ic > 0.99);
  (* the 128-byte working set fits: D-cache compulsory misses only *)
  Alcotest.(check bool) "dcache hit rate > 95%" true (C.hit_rate dc > 0.95);
  Alcotest.(check bool) "dcache misses bounded by working set" true
    (dc.C.st_misses <= 8);
  C.detach m caches;
  let before = ic.C.st_accesses in
  S4e_asm.Program.load_machine p m;
  let _ = Machine.run m ~fuel:100_000 in
  Alcotest.(check int) "detached: no further counting" before
    (C.icache_stats caches).C.st_accesses

(* snapshot -> run k -> restore -> run k must replay identically:
   the campaign engine's fork correctness rests on this *)
let snapshot_replay_prop =
  let src = {|
_start:
  li   s0, 0
  li   s1, 300
  la   s2, buf
lp:
  andi a0, s0, 15
  slli a0, a0, 2
  add  a1, s2, a0
  sw   s0, 0(a1)
  lw   a2, 0(a1)
  mul  a3, a2, s0
  xor  s3, s3, a3
  addi s0, s0, 1
  blt  s0, s1, lp
  li   t1, 0x00100000
  sw   zero, 0(t1)
  ebreak
  .data
buf:
  .space 64
|}
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"snapshot/restore replays identically" ~count:40
       QCheck.(pair (int_bound 600) (int_bound 600))
       (fun (k, j) ->
         let p = S4e_asm.Assembler.assemble_exn src in
         let m = Machine.create () in
         S4e_asm.Program.load_machine p m;
         ignore (Machine.run m ~fuel:k);
         let snap = Machine.snapshot m in
         let obs stop =
           ( stop,
             m.Machine.state.State.pc,
             Machine.instret m,
             m.Machine.state.State.cycle,
             Machine.uart_output m,
             Machine.state_digest m )
         in
         let o1 = obs (Machine.run m ~fuel:(j + 1)) in
         Machine.restore m snap;
         let o2 = obs (Machine.run m ~fuel:(j + 1)) in
         o1 = o2))

(* TLB invalidation corners at machine level: the same phased scenario —
   warm-up, an Io_guard stacked mid-run (installs/uninstalls the bus
   watcher), snapshot/restore, and injector writes — must be
   digest-identical with the software TLB on and off.  Any stale page
   pointer surviving one of those mutation points diverges the digest. *)
let tlb_corner_scenario mem_tlb (k1, k2, k3) =
  let src = {|
_start:
  li   s0, 0
  li   s1, 100000
  la   s2, buf
  li   s3, 0x10000000
lp:
  andi a0, s0, 63
  add  a1, s2, a0
  sb   s0, 0(a1)
  lbu  a2, 0(a1)
  xor  s4, s4, a2
  andi a3, s0, 1023
  bnez a3, nouart
  li   a4, 46
  sw   a4, 0(s3)
nouart:
  addi s0, s0, 1
  blt  s0, s1, lp
  li   t1, 0x00100000
  sw   zero, 0(t1)
  ebreak
  .data
buf:
  .space 64
|}
  in
  let p = S4e_asm.Assembler.assemble_exn src in
  let config = { Machine.default_config with Machine.mem_tlb } in
  let m = Machine.create ~config () in
  S4e_asm.Program.load_machine p m;
  (* phase 1: warm the TLB *)
  ignore (Machine.run m ~fuel:(k1 + 1));
  (* phase 2: stack an IO guard mid-run (watcher install must flush) *)
  let guard =
    S4e_core.Io_guard.attach m
      [ { S4e_core.Io_guard.p_device = "uart"; p_allowed = [];
          p_restrict = S4e_core.Io_guard.Restrict_writes } ]
  in
  ignore (Machine.run m ~fuel:(k2 + 1));
  let violations = List.length (S4e_core.Io_guard.violations guard) in
  S4e_core.Io_guard.detach m guard;
  (* phase 3: snapshot, diverge, restore (restore must flush) *)
  let snap = Machine.snapshot m in
  ignore (Machine.run m ~fuel:(k3 + 1));
  let diverged = Machine.state_digest m in
  Machine.restore m snap;
  (* phase 4: injector writes behind the bus — into the buffer the loop
     keeps reading, so a stale read-view entry would alter the xor
     stream — then run to completion *)
  let buf = List.assoc "buf" p.S4e_asm.Program.symbols in
  let armed =
    S4e_fault.Injector.arm m
      { S4e_fault.Fault.loc = S4e_fault.Fault.Data (buf + 7, 3);
        kind = S4e_fault.Fault.Permanent }
  in
  S4e_fault.Injector.disarm m armed;
  let stop = Machine.run m ~fuel:2_000_000 in
  (stop, violations, diverged, Machine.uart_output m, Machine.state_digest m)

let tlb_corners_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"TLB on/off agree across invalidation corners"
       ~count:20
       QCheck.(triple (int_bound 5_000) (int_bound 5_000) (int_bound 5_000))
       (fun ks -> tlb_corner_scenario true ks = tlb_corner_scenario false ks))

(* DMA-active runs: torture programs with the device rig armed (vnet
   generator bursts + delayed DMA descriptors mutating RAM behind the
   hart's back).  The full observable outcome must be digest-identical
   with the software TLB on and off — DMA writes bypass the bus, so a
   page pointer cached across a burst would serve stale data — and a
   mid-flight snapshot (DMA events pending, pages half-written) must
   restore and replay to the same digest. *)
let device_plane_scenario mem_tlb (seed, k) =
  let p =
    S4e_torture.Torture.generate
      { S4e_torture.Torture.default_config with S4e_torture.Torture.seed }
  in
  let config = { Machine.default_config with Machine.mem_tlb } in
  let m = Machine.create ~config () in
  S4e_asm.Program.load_machine p m;
  S4e_core.Flows.arm_device_rig m;
  ignore (Machine.run m ~fuel:(k + 1));
  let snap = Machine.snapshot m in
  let stop1 = Machine.run m ~fuel:2_000_000 in
  let final1 = Machine.state_digest m in
  Machine.restore m snap;
  let stop2 = Machine.run m ~fuel:2_000_000 in
  let final2 = Machine.state_digest m in
  if final1 <> final2 || stop1 <> stop2 then
    QCheck.Test.fail_reportf
      "snapshot replay diverged (mem_tlb=%b seed=%d k=%d)" mem_tlb seed k;
  (stop1, final1, Machine.instret m, Machine.uart_output m)

let device_plane_diff_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"DMA-active runs: TLB on/off agree, snapshots replay" ~count:15
       QCheck.(pair (int_range 1 10_000) (int_bound 1_500))
       (fun sk ->
         device_plane_scenario true sk = device_plane_scenario false sk))

let test_mret_restores_mie () =
  let st = State.create () in
  State.set_mie_bit st false;
  State.set_mpie_bit st true;
  st.State.mepc <- 0x8000_0042 land lnot 1;
  let bus = Bus.create () in
  let _ = Exec.execute st bus ~size:4 Instr.Mret in
  Alcotest.(check bool) "MIE restored" true (State.mie_bit st);
  Alcotest.(check bool) "MPIE set" true (State.mpie_bit st);
  Alcotest.(check int) "pc from mepc" 0x8000_0042 st.State.pc

let () =
  Alcotest.run "cpu"
    [ ( "state",
        [ Alcotest.test_case "x0 hardwired" `Quick test_x0_hardwired;
          Alcotest.test_case "copy" `Quick test_state_copy;
          Alcotest.test_case "csr file" `Quick test_csr_file ] );
      ( "exec",
        [ Alcotest.test_case "directed" `Quick test_directed_exec;
          Alcotest.test_case "loads/stores" `Quick test_loads_stores;
          Alcotest.test_case "traps" `Quick test_misaligned_traps;
          Alcotest.test_case "csr instructions" `Quick test_csr_instr_semantics;
          Alcotest.test_case "fp basics" `Quick test_fp_basic;
          Alcotest.test_case "fp special values" `Quick test_fp_special_values;
          Alcotest.test_case "mret" `Quick test_mret_restores_mie ] );
      ("exec-properties",
        alu_matches_bits :: unary_matches_bits :: state_canonical_prop
        :: fp_props);
      ( "machine",
        [ Alcotest.test_case "trap handler" `Quick test_machine_trap_handler;
          Alcotest.test_case "interrupt priority" `Quick
            test_interrupt_priority;
          Alcotest.test_case "fatal trap" `Quick test_machine_fatal_trap;
          Alcotest.test_case "illegal instruction" `Quick test_machine_illegal;
          Alcotest.test_case "timer interrupt" `Quick
            test_machine_timer_interrupt;
          Alcotest.test_case "wfi halt" `Quick test_machine_wfi_halt;
          Alcotest.test_case "out of fuel" `Quick test_machine_out_of_fuel;
          Alcotest.test_case "fence.i self-modifying" `Quick
            test_fence_i_self_modifying;
          Alcotest.test_case "page-granular invalidation" `Quick
            test_page_granular_invalidation;
          Alcotest.test_case "decoder configs agree" `Quick
            test_decoder_configs_agree;
          Alcotest.test_case "restricted ISA traps" `Quick
            test_restricted_isa_traps;
          Alcotest.test_case "tb cache stats" `Quick test_tb_cache_stats;
          Alcotest.test_case "load-use hazard" `Quick
            test_load_use_hazard_cycles;
          Alcotest.test_case "tracer" `Quick test_tracer;
          Alcotest.test_case "atomics" `Quick test_atomics;
          Alcotest.test_case "amo misaligned" `Quick test_amo_misaligned_traps;
          Alcotest.test_case "sc wrong address" `Quick
            test_sc_wrong_address_fails;
          Alcotest.test_case "cache model unit" `Quick test_cache_model_unit;
          Alcotest.test_case "cache model attached" `Quick
            test_cache_model_attached;
          snapshot_replay_prop;
          tlb_corners_prop;
          device_plane_diff_prop ] ) ]
