(* Fault injection tests: injector mechanics, campaign classification,
   coverage-guided generation, and determinism. *)

module Machine = S4e_cpu.Machine
module Fault = S4e_fault.Fault
module Injector = S4e_fault.Injector
module Campaign = S4e_fault.Campaign

let prop ?(count = 20) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let checksum_src = {|
_start:
  li   a0, 0
  li   a1, 1
  li   a2, 20
l:
  add  a0, a0, a1
  addi a1, a1, 1
  blt  a1, a2, l
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
|}

let program () = S4e_asm.Assembler.assemble_exn checksum_src

let test_golden_signature () =
  let sg, cov = Campaign.golden ~fuel:10_000 (program ()) in
  Alcotest.(check (option int)) "exit is sum 1..19" (Some 190)
    sg.Campaign.sig_exit;
  Alcotest.(check bool) "instret recorded" true (sg.Campaign.sig_instret > 30);
  Alcotest.(check bool) "coverage collected" true
    (S4e_coverage.Report.executed_count cov > 0)

let test_code_flip_changes_memory () =
  let m = Machine.create () in
  S4e_asm.Program.load_machine (program ()) m;
  let before = S4e_mem.Sparse_mem.read32 (S4e_mem.Bus.ram m.Machine.bus) 0x8000_0000 in
  let _ = Injector.arm m { Fault.loc = Fault.Code (0x8000_0000, 5); kind = Fault.Permanent } in
  let after = S4e_mem.Sparse_mem.read32 (S4e_mem.Bus.ram m.Machine.bus) 0x8000_0000 in
  Alcotest.(check int) "exactly one bit flipped" (1 lsl 5) (before lxor after)

let test_transient_gpr_flip () =
  (* flip bit 0 of the accumulator a0 exactly once -> off-by-one sdc *)
  let p = program () in
  let golden, _ = Campaign.golden ~fuel:10_000 p in
  let fault =
    { Fault.loc = Fault.Gpr (10, 0); kind = Fault.Transient 20 }
  in
  let outcome = Campaign.run_one ~fuel:10_000 p ~golden fault in
  Alcotest.(check string) "classified sdc" "sdc" (Campaign.outcome_name outcome)

let test_x0_fault_masked () =
  (* x0 is hardwired: injecting into it must always be masked *)
  let p = program () in
  let golden, _ = Campaign.golden ~fuel:10_000 p in
  List.iter
    (fun kind ->
      let outcome =
        Campaign.run_one ~fuel:10_000 p ~golden
          { Fault.loc = Fault.Gpr (0, 7); kind }
      in
      Alcotest.(check string) "masked" "masked" (Campaign.outcome_name outcome))
    [ Fault.Permanent; Fault.Transient 5 ]

let test_unused_register_masked () =
  (* s5 is never touched by the program: any fault there is masked *)
  let p = program () in
  let golden, _ = Campaign.golden ~fuel:10_000 p in
  let outcome =
    Campaign.run_one ~fuel:10_000 p ~golden
      { Fault.loc = Fault.Gpr (21, 13); kind = Fault.Permanent }
  in
  Alcotest.(check string) "masked" "masked" (Campaign.outcome_name outcome)

let test_opcode_corruption_crashes () =
  (* flipping a high opcode bit of the first instruction usually makes
     an illegal/strange instruction; flip into the unused encoding *)
  let p = program () in
  let golden, _ = Campaign.golden ~fuel:10_000 p in
  (* turn addi (0x13) into an undefined opcode by flipping bit 2 -> 0x17?
     that is auipc.  Use bit 6 -> 0x53 = OP-FP funct7=0 rm... decodes.
     Flip bit 3: 0x13 -> 0x1B which is RV64 OP-IMM-32: undecodable. *)
  let outcome =
    Campaign.run_one ~fuel:10_000 p ~golden
      { Fault.loc = Fault.Code (0x8000_0000, 3); kind = Fault.Permanent }
  in
  Alcotest.(check string) "crashed" "crashed" (Campaign.outcome_name outcome)

let test_branch_corruption_can_hang () =
  (* flip the branch polarity bit: bne <-> beq style changes can spin *)
  let p =
    S4e_asm.Assembler.assemble_exn {|
_start:
  li   a0, 0
  li   a1, 5
l:
  addi a0, a0, 1
  bne  a0, a1, l
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
|}
  in
  let golden, _ = Campaign.golden ~fuel:10_000 p in
  (* corrupt the bound register so the equality is never met *)
  let outcome =
    Campaign.run_one ~fuel:10_000 p ~golden
      { Fault.loc = Fault.Gpr (11, 31); kind = Fault.Permanent }
  in
  Alcotest.(check string) "hung" "hung" (Campaign.outcome_name outcome)

let test_unexecuted_code_fault_masked () =
  (* a flip in code past the exit store is never fetched *)
  let p =
    S4e_asm.Assembler.assemble_exn {|
_start:
  li   a0, 9
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
dead:
  addi a0, a0, 1
|}
  in
  let golden, _ = Campaign.golden ~fuel:10_000 p in
  let dead = Option.get (S4e_asm.Program.symbol p "dead") in
  let outcome =
    Campaign.run_one ~fuel:10_000 p ~golden
      { Fault.loc = Fault.Code (dead, 11); kind = Fault.Permanent }
  in
  Alcotest.(check string) "dead code fault masked" "masked"
    (Campaign.outcome_name outcome)

let test_untouched_data_fault_masked () =
  let p = program () in
  let golden, _ = Campaign.golden ~fuel:10_000 p in
  let outcome =
    Campaign.run_one ~fuel:10_000 p ~golden
      { Fault.loc = Fault.Data (0x8005_0000, 3); kind = Fault.Permanent }
  in
  Alcotest.(check string) "untouched data fault masked" "masked"
    (Campaign.outcome_name outcome)

let test_late_transient_masked () =
  (* a transient scheduled after the program exits never fires *)
  let p = program () in
  let golden, _ = Campaign.golden ~fuel:10_000 p in
  let outcome =
    Campaign.run_one ~fuel:10_000 p ~golden
      { Fault.loc = Fault.Gpr (10, 0);
        kind = Fault.Transient (golden.Campaign.sig_instret + 100) }
  in
  Alcotest.(check string) "late transient masked" "masked"
    (Campaign.outcome_name outcome)

let test_generation_determinism () =
  let p = program () in
  let golden, cov = Campaign.golden ~fuel:10_000 p in
  let gen () =
    Campaign.generate ~seed:99 ~n:50 ~targets:[ `Gpr; `Code; `Data ]
      ~kinds:[ `Permanent; `Transient ] ~coverage:cov
      ~golden_instret:golden.Campaign.sig_instret
  in
  Alcotest.(check bool) "same seed, same faults" true (gen () = gen ());
  let other =
    Campaign.generate ~seed:100 ~n:50 ~targets:[ `Gpr; `Code; `Data ]
      ~kinds:[ `Permanent; `Transient ] ~coverage:cov
      ~golden_instret:golden.Campaign.sig_instret
  in
  Alcotest.(check bool) "different seed differs" true (gen () <> other)

let test_guided_sites_are_covered () =
  let p = program () in
  let golden, cov = Campaign.golden ~fuel:10_000 p in
  let faults =
    Campaign.generate ~seed:5 ~n:100 ~targets:[ `Gpr; `Code ]
      ~kinds:[ `Permanent ] ~coverage:cov
      ~golden_instret:golden.Campaign.sig_instret
  in
  List.iter
    (fun f ->
      match f.Fault.loc with
      | Fault.Gpr (r, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "reg %d accessed" r)
            true
            (cov.S4e_coverage.Report.gpr_read.(r)
            || cov.S4e_coverage.Report.gpr_written.(r))
      | Fault.Code (a, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "pc 0x%08x executed" a)
            true
            (Hashtbl.mem cov.S4e_coverage.Report.executed_pcs a)
      | Fault.Fpr _ | Fault.Data _ -> Alcotest.fail "unexpected target")
    faults

let test_campaign_summary_adds_up () =
  let p = program () in
  let golden, cov = Campaign.golden ~fuel:10_000 p in
  let faults =
    Campaign.generate ~seed:3 ~n:40 ~targets:[ `Gpr; `Code; `Data ]
      ~kinds:[ `Permanent; `Transient ] ~coverage:cov
      ~golden_instret:golden.Campaign.sig_instret
  in
  let results = Campaign.run ~fuel:10_000 p ~golden faults in
  let s = Campaign.summarize results in
  Alcotest.(check int) "total" 40 s.Campaign.total;
  Alcotest.(check int) "classes partition" s.Campaign.total
    (s.Campaign.masked + s.Campaign.sdc + s.Campaign.crashed + s.Campaign.hung
    + s.Campaign.errors)

let campaign_determinism =
  prop ~count:5 "campaign outcome deterministic" (QCheck.int_bound 1000)
    (fun seed ->
      let p = program () in
      let golden, cov = Campaign.golden ~fuel:10_000 p in
      let faults =
        Campaign.generate ~seed ~n:15 ~targets:[ `Gpr; `Code; `Data ]
          ~kinds:[ `Permanent; `Transient ] ~coverage:cov
          ~golden_instret:golden.Campaign.sig_instret
      in
      let r1 = Campaign.run ~fuel:10_000 p ~golden faults in
      let r2 = Campaign.run ~fuel:10_000 p ~golden faults in
      r1 = r2)

let test_generation_regression () =
  (* Exact expected fault list for a pinned seed: fails if pool
     derivation, rng consumption order, or site sorting ever changes
     silently.  Regenerate with Campaign.generate ~seed:42 ~n:6 on the
     checksum program if the change is intentional. *)
  let p = program () in
  let golden, cov = Campaign.golden ~fuel:10_000 p in
  Alcotest.(check int) "golden instret" 63 golden.Campaign.sig_instret;
  let faults =
    Campaign.generate ~seed:42 ~n:6 ~targets:[ `Gpr; `Code; `Data ]
      ~kinds:[ `Permanent; `Transient ] ~coverage:cov
      ~golden_instret:golden.Campaign.sig_instret
  in
  let expected =
    [ { Fault.loc = Fault.Gpr (10, 24); kind = Fault.Permanent };
      { Fault.loc = Fault.Gpr (10, 31); kind = Fault.Permanent };
      { Fault.loc = Fault.Gpr (6, 2); kind = Fault.Transient 43 };
      { Fault.loc = Fault.Gpr (12, 27); kind = Fault.Transient 37 };
      { Fault.loc = Fault.Gpr (10, 19); kind = Fault.Permanent };
      { Fault.loc = Fault.Gpr (6, 11); kind = Fault.Transient 15 } ]
  in
  Alcotest.(check bool) "exact fault list" true (faults = expected)

(* A longer workload than the checksum loop so engine shortcuts
   (forking, early exit) have room to act. *)
let engine_src = {|
_start:
  li   s0, 0
  li   s1, 0
  li   s2, 120
  li   s3, 0x80001000
outer:
  li   t0, 0
  li   t1, 13
inner:
  mul  t2, t0, s1
  add  s0, s0, t2
  xor  s0, s0, t0
  sw   s0, 0(s3)
  lw   t3, 0(s3)
  add  s0, s0, t3
  addi t0, t0, 1
  blt  t0, t1, inner
  addi s1, s1, 1
  blt  s1, s2, outer
  andi a0, s0, 0xff
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
|}

let engine_campaign ?config ?engine ?jobs () =
  let p = S4e_asm.Assembler.assemble_exn engine_src in
  let golden, cov = Campaign.golden ?config ~fuel:100_000 p in
  let faults =
    Campaign.generate ~seed:11 ~n:200 ~targets:[ `Gpr; `Data ]
      ~kinds:[ `Permanent; `Transient ] ~coverage:cov
      ~golden_instret:golden.Campaign.sig_instret
  in
  Campaign.run ?config ?engine ?jobs ~fuel:100_000 p ~golden faults

let test_jobs_deterministic () =
  (* acceptance: a 200-fault campaign at -j 4 is byte-identical to the
     sequential run, including fault order *)
  let seq = engine_campaign ~jobs:1 () in
  let par = engine_campaign ~jobs:4 () in
  Alcotest.(check bool) "jobs=4 identical to jobs=1" true (seq = par);
  Alcotest.(check bool) "summaries equal" true
    (Campaign.summarize seq = Campaign.summarize par)

let test_engine_matches_rerun () =
  (* With per-instruction decode (no TB cache) the engine's snapshot
     seams cannot shift translation-block boundaries, so fork + early
     exit must reproduce the naive rerun classification exactly. *)
  let config =
    { Machine.default_config with Machine.use_tb_cache = false }
  in
  let fast = engine_campaign ~config ~engine:Campaign.default_engine () in
  let naive = engine_campaign ~config ~engine:Campaign.rerun_engine () in
  Alcotest.(check bool) "engine = naive rerun" true (fast = naive);
  let s = Campaign.summarize fast in
  Alcotest.(check int) "all faults classified" 200 s.Campaign.total

let test_engine_axes_agree () =
  (* every axis combination classifies identically on the default
     config for register/data faults *)
  let base = engine_campaign ~engine:Campaign.rerun_engine () in
  List.iter
    (fun engine ->
      Alcotest.(check bool) "axis combination agrees" true
        (engine_campaign ~engine () = base))
    [ Campaign.default_engine;
      { Campaign.default_engine with Campaign.eng_fork = false };
      { Campaign.default_engine with Campaign.eng_checkpoint = 0 };
      { Campaign.default_engine with Campaign.eng_checkpoint = 256 } ]

let test_midblock_code_flip_visibility () =
  (* A transient code flip landing just AHEAD of the pc inside the
     currently-executing translation block: every path must segment the
     run at the injection instant, so the next fetch decodes the
     flipped word.  A continuous hooked run would ride the stale
     pre-decoded block to its end and miss the flip entirely —
     classifying Masked where the engine's forked suffix (which
     resumes, and re-decodes, at the injection point) sees Sdc. *)
  let src = {|
_start:
  li   t2, 5
  li   a0, 0
warm:
  addi t2, t2, -1
  bnez t2, warm
  addi a0, a0, 1
  addi a0, a0, 1
  addi a0, a0, 1
  addi a0, a0, 1
  addi a0, a0, 1
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
|}
  in
  let p = S4e_asm.Assembler.assemble_exn src in
  let golden, _ = Campaign.golden ~fuel:10_000 p in
  Alcotest.(check (option int)) "golden exit" (Some 5) golden.Campaign.sig_exit;
  (* straight-line block entered at instret 13 (after the warm loop);
     flip bit 21 of the addi at 0x8000001c (imm 1 -> 3, instret 16)
     at instret 14 — two slots ahead of the pc, same block *)
  let fault =
    { Fault.loc = Fault.Code (0x8000001c, 21); kind = Fault.Transient 14 }
  in
  Alcotest.(check string) "run_one sees the flip" "sdc"
    (Campaign.outcome_name (Campaign.run_one ~fuel:10_000 p ~golden fault));
  List.iter
    (fun (name, engine) ->
      match Campaign.run ~engine ~fuel:10_000 p ~golden [ fault ] with
      | [ (_, o) ] ->
          Alcotest.(check string) (name ^ " sees the flip") "sdc"
            (Campaign.outcome_name o)
      | _ -> Alcotest.fail (name ^ ": expected one classified mutant"))
    [ ("engine", Campaign.default_engine); ("rerun", Campaign.rerun_engine) ]

(* ---------------- hardening: errors, journals, shards ---------------- *)

module Journal = S4e_fault.Journal
module Flows = S4e_core.Flows

let gen_faults ~seed ~n _p golden cov =
  Campaign.generate ~seed ~n ~targets:[ `Gpr; `Code; `Data ]
    ~kinds:[ `Permanent; `Transient ] ~coverage:cov
    ~golden_instret:golden.Campaign.sig_instret

let fault_string_roundtrip =
  prop ~count:100 "fault to_string/of_string roundtrip"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let p = program () in
      let golden, cov = Campaign.golden ~fuel:10_000 p in
      List.for_all
        (fun f -> Fault.of_string (Fault.to_string f) = Ok f)
        (gen_faults ~seed ~n:20 p golden cov))

let test_malformed_fault_errored () =
  (* A fault the injector rejects must not abort the campaign: the
     mutant is classified Errored (after one retry), the rest of the
     list classifies normally, and the counters record it. *)
  let p = program () in
  let golden, cov = Campaign.golden ~fuel:10_000 p in
  let good = gen_faults ~seed:7 ~n:4 p golden cov in
  let bad = { Fault.loc = Fault.Gpr (33, 0); kind = Fault.Permanent } in
  let faults = List.concat [ [ List.hd good ]; [ bad ]; List.tl good ] in
  let reg = S4e_obs.Metrics.create () in
  let results = Campaign.run ~metrics:reg ~fuel:10_000 p ~golden faults in
  Alcotest.(check int) "all classified" 5 (List.length results);
  let outcomes = List.map (fun (_, o) -> Campaign.outcome_name o) results in
  Alcotest.(check string) "bad mutant errored" "errored" (List.nth outcomes 1);
  List.iteri
    (fun i o ->
      if i <> 1 then
        Alcotest.(check bool) "good mutants unaffected" false (o = "errored"))
    outcomes;
  (match List.nth results 1 with
  | _, Campaign.Errored msg ->
      Alcotest.(check bool) "exception text kept" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected Errored");
  let v name = S4e_obs.Metrics.value (S4e_obs.Metrics.counter reg name) in
  Alcotest.(check int) "campaign.errors" 1 (v "campaign.errors");
  Alcotest.(check int) "campaign.retries" 1 (v "campaign.retries");
  let s = Campaign.summarize results in
  Alcotest.(check int) "summary counts it" 1 s.Campaign.errors

let test_wallclock_timeout () =
  (* With an (absurdly) tiny wall-clock budget every mutant hits its
     deadline before its first burst and classifies like fuel
     exhaustion. *)
  let p = program () in
  let golden, cov = Campaign.golden ~fuel:10_000 p in
  let faults = gen_faults ~seed:9 ~n:8 p golden cov in
  let engine =
    { Campaign.default_engine with Campaign.eng_timeout_s = 1e-9 }
  in
  let reg = S4e_obs.Metrics.create () in
  let results = Campaign.run ~engine ~metrics:reg ~fuel:10_000 p ~golden faults in
  List.iter
    (fun (_, o) ->
      Alcotest.(check string) "deadline -> hung" "hung"
        (Campaign.outcome_name o))
    results;
  Alcotest.(check bool) "timeouts counted" true
    (S4e_obs.Metrics.value (S4e_obs.Metrics.counter reg "campaign.timeouts")
    >= 8)

let shard_completeness =
  prop ~count:50 "shards partition the fault list"
    QCheck.(pair (int_range 1 7) (int_range 0 40))
    (fun (count, n) ->
      let ifaults =
        List.init n (fun i ->
            (i, { Fault.loc = Fault.Gpr (i mod 32, 0); kind = Fault.Permanent }))
      in
      let shards =
        List.init count (fun index -> Campaign.shard ~index ~count ifaults)
      in
      let union = List.concat shards in
      List.length union = n
      && List.sort compare union = ifaults
      && List.for_all
           (fun s ->
             List.for_all (fun (i, _) -> List.mem_assoc i ifaults) s)
           shards)

let with_tmp f =
  let path = Filename.temp_file "s4e_journal" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let flow_cfg ~seed ~n =
  { Flows.default_fault_config with
    Flows.ff_seed = seed; ff_mutants = n; ff_fuel = 100_000;
    ff_hang_budget = Flows.Hang_fuel }

let engine_program () = S4e_asm.Assembler.assemble_exn engine_src

let test_journal_roundtrip_and_torn_tail () =
  let p = engine_program () in
  with_tmp (fun path ->
      let r =
        match Flows.fault_campaign ~journal:path (flow_cfg ~seed:11 ~n:30) p with
        | Ok r -> r
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "complete" true r.Flows.ff_complete;
      let h, records =
        match Journal.read path with
        | Ok x -> x
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check int) "header total" 30 h.Journal.j_total;
      Alcotest.(check int) "one record per mutant" 30 (List.length records);
      Alcotest.(check bool) "journal reproduces the summary" true
        (Campaign.summarize
           (List.map (fun r -> (r.Journal.r_fault, r.Journal.r_outcome)) records)
        = r.Flows.ff_summary);
      (* a torn final line (crash mid-write) is dropped on read *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"i\":99,\"fau";
      close_out oc;
      match Journal.read path with
      | Ok (_, records') ->
          Alcotest.(check int) "torn tail dropped" 30 (List.length records')
      | Error e -> Alcotest.fail ("torn tail should be tolerated: " ^ e))

let resume_differential =
  prop ~count:4 "interrupted-at-k + resume = full run"
    QCheck.(triple (int_bound 1000) (int_range 0 29) (int_range 1 4))
    (fun (seed, k, jobs) ->
      let p = engine_program () in
      let cfg = flow_cfg ~seed ~n:30 in
      with_tmp (fun j_full ->
          with_tmp (fun j_part ->
              let full =
                match Flows.fault_campaign ~jobs ~journal:j_full cfg p with
                | Ok r -> r
                | Error e -> Alcotest.fail e
              in
              let header, records =
                match Journal.read j_full with
                | Ok x -> x
                | Error e -> Alcotest.fail e
              in
              (* reconstruct the journal of a run interrupted after k
                 classifications, then resume it *)
              let w =
                match Journal.create ~path:j_part header with
                | Ok w -> w
                | Error e -> Alcotest.fail e
              in
              List.iteri (fun i r -> if i < k then Journal.write w r) records;
              Journal.close w;
              let resumed =
                match Flows.fault_campaign ~jobs ~resume:j_part cfg p with
                | Ok r -> r
                | Error e -> Alcotest.fail e
              in
              resumed.Flows.ff_resumed = k
              && resumed.Flows.ff_complete
              && resumed.Flows.ff_summary = full.Flows.ff_summary
              && resumed.Flows.ff_results = full.Flows.ff_results)))

let test_resume_rejects_other_campaign () =
  let p = engine_program () in
  with_tmp (fun path ->
      (match Flows.fault_campaign ~journal:path (flow_cfg ~seed:3 ~n:10) p with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      match Flows.fault_campaign ~resume:path (flow_cfg ~seed:4 ~n:10) p with
      | Ok _ -> Alcotest.fail "resume with a different seed must be rejected"
      | Error _ -> ())

let test_shard_merge_equals_full () =
  let p = engine_program () in
  let cfg = flow_cfg ~seed:17 ~n:24 in
  let full =
    match Flows.fault_campaign cfg p with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let count = 3 in
  let journals =
    List.init count (fun index ->
        let path =
          Filename.temp_file (Printf.sprintf "s4e_shard%d" index) ".jsonl"
        in
        (match
           Flows.fault_campaign ~journal:path ~shard:(index, count) cfg p
         with
        | Ok r -> Alcotest.(check bool) "shard complete" true r.Flows.ff_complete
        | Error e -> Alcotest.fail e);
        path)
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) journals)
    (fun () ->
      let inputs =
        List.map
          (fun path ->
            match Journal.read path with
            | Ok x -> x
            | Error e -> Alcotest.fail e)
          journals
      in
      match Journal.merge inputs with
      | Error e -> Alcotest.fail e
      | Ok (h, records) ->
          Alcotest.(check bool) "merged complete" true
            (Journal.is_complete h records);
          Alcotest.(check bool) "merged summary = full summary" true
            (Campaign.summarize
               (List.map
                  (fun r -> (r.Journal.r_fault, r.Journal.r_outcome))
                  records)
            = full.Flows.ff_summary);
          Alcotest.(check bool) "merged results = full results" true
            (List.map (fun r -> (r.Journal.r_fault, r.Journal.r_outcome)) records
            = full.Flows.ff_results))

let test_cancellation_partial_then_resume () =
  (* cancel after ~half the mutants classify: the partial result is
     valid and resumable, and the resumed run completes the campaign *)
  let p = engine_program () in
  let cfg = flow_cfg ~seed:23 ~n:20 in
  let full =
    match Flows.fault_campaign cfg p with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  with_tmp (fun path ->
      (* the campaign's own mutants counter tracks classifications, so
         the cancellation callback can poll it like a SIGINT flag *)
      let reg = S4e_obs.Metrics.create () in
      let mutants = S4e_obs.Metrics.counter reg "campaign.mutants" in
      let partial =
        match
          Flows.fault_campaign ~metrics:reg ~journal:path
            ~cancelled:(fun () -> S4e_obs.Metrics.value mutants >= 10)
            cfg p
        with
        | Ok r -> r
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "partial run incomplete" true
        (not partial.Flows.ff_complete);
      Alcotest.(check bool) "partial run classified a prefix" true
        (partial.Flows.ff_summary.Campaign.total < 20);
      let resumed =
        match Flows.fault_campaign ~resume:path cfg p with
        | Ok r -> r
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "resumed run completes" true
        resumed.Flows.ff_complete;
      Alcotest.(check bool) "summary identical to uninterrupted" true
        (resumed.Flows.ff_summary = full.Flows.ff_summary))

let test_blind_generation () =
  let p = program () in
  let golden, _ = Campaign.golden ~fuel:10_000 p in
  let faults =
    Campaign.generate_blind ~seed:5 ~n:50 ~targets:[ `Gpr ]
      ~kinds:[ `Permanent ] ~program:p
      ~golden_instret:golden.Campaign.sig_instret
  in
  Alcotest.(check int) "fifty faults" 50 (List.length faults);
  (* blind generation hits registers the program never uses *)
  let unused =
    List.exists
      (fun f ->
        match f.Fault.loc with
        | Fault.Gpr (r, _) -> r >= 18 && r <= 27  (* s2..s11 untouched *)
        | _ -> false)
      faults
  in
  Alcotest.(check bool) "includes unused registers" true unused

(* ---------------- divergence triage ---------------- *)

(* Strict single-value JSON validator: triage JSONL lines must be
   parseable by any off-the-shelf consumer, so validate the grammar,
   not just the fields we happen to read back. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail () = raise Exit in
  let adv () = incr pos in
  let rec skip_ws () =
    match peek () with Some (' ' | '\t') -> adv (); skip_ws () | _ -> ()
  in
  let expect c = if peek () = Some c then adv () else fail () in
  let lit w =
    let m = String.length w in
    if !pos + m <= n && String.sub s !pos m = w then pos := !pos + m
    else fail ()
  in
  let number () =
    if peek () = Some '-' then adv ();
    let start = !pos in
    while (match peek () with Some '0' .. '9' -> true | _ -> false) do
      adv ()
    done;
    if !pos = start then fail ()
  in
  let str () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail ()
      | Some '"' -> adv ()
      | Some '\\' -> (
          adv ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              adv (); go ()
          | Some 'u' ->
              adv ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> adv ()
                | _ -> fail ()
              done;
              go ()
          | _ -> fail ())
      | Some c when Char.code c < 0x20 -> fail ()
      | Some _ -> adv (); go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then adv ()
    else
      let rec members () =
        skip_ws (); str (); skip_ws (); expect ':'; value (); skip_ws ();
        match peek () with
        | Some ',' -> adv (); members ()
        | Some '}' -> adv ()
        | _ -> fail ()
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then adv ()
    else
      let rec elems () =
        value (); skip_ws ();
        match peek () with
        | Some ',' -> adv (); elems ()
        | Some ']' -> adv ()
        | _ -> fail ()
      in
      elems ()
  in
  match value (); skip_ws (); !pos = n with
  | r -> r
  | exception Exit -> false

let test_triage_locates_divergence () =
  let p = program () in
  let golden, _ = Campaign.golden ~fuel:10_000 p in
  let faults =
    [ { Fault.loc = Fault.Gpr (10, 0); kind = Fault.Transient 20 };
      { Fault.loc = Fault.Code (0x8000_0000, 3); kind = Fault.Permanent } ]
  in
  let results =
    List.mapi
      (fun i f -> (i, f, Campaign.run_one ~fuel:10_000 p ~golden f))
      faults
  in
  let recs = Campaign.triage ~fuel:10_000 p results in
  Alcotest.(check int) "one record per divergent mutant" 2 (List.length recs);
  List.iter
    (fun t ->
      Alcotest.(check bool) "diverged" true t.Campaign.tg_diverged;
      Alcotest.(check bool) "diverging site named" true
        (String.length t.Campaign.tg_insn > 0);
      Alcotest.(check bool) "architectural diff present" true
        (t.Campaign.tg_reg_diffs <> [] || t.Campaign.tg_mem_diff
        || t.Campaign.tg_golden_pc <> t.Campaign.tg_mutant_pc);
      Alcotest.(check bool) "tail dump present" true
        (t.Campaign.tg_tail <> []))
    recs;
  (* the transient flips a0 right before its 20th instruction retires,
     so the first differing record cannot come earlier *)
  let t0 = List.hd recs in
  Alcotest.(check bool) "transient diverges at/after injection" true
    (t0.Campaign.tg_instret >= 20);
  (* the permanent code flip turns the first instruction undecodable:
     the mutant's first record is the trap marker *)
  let t1 = List.nth recs 1 in
  Alcotest.(check int) "code flip diverges at the first instruction" 0
    t1.Campaign.tg_instret;
  Alcotest.(check bool) "code flip is a memory diff" true
    t1.Campaign.tg_mem_diff

let test_triage_flow_jsonl_and_top_sites () =
  let p = engine_program () in
  let cfg = flow_cfg ~seed:23 ~n:40 in
  let r = Flows.fault_flow cfg p in
  let divergent =
    List.filter
      (fun (_, _, o) ->
        match o with
        | Campaign.Sdc | Campaign.Crashed | Campaign.Hung -> true
        | _ -> false)
      r.Flows.ff_indexed
  in
  let sample = 4 in
  let expected = min sample (List.length divergent) in
  Alcotest.(check bool) "campaign produced divergent mutants" true
    (expected > 0);
  let recs = Flows.fault_triage ~sample cfg p r in
  Alcotest.(check int) "one triage record per sampled mutant" expected
    (List.length recs);
  List.iter
    (fun t ->
      let line = Campaign.triage_to_json t in
      Alcotest.(check bool) "jsonl: single line" false
        (String.contains line '\n');
      Alcotest.(check bool) "jsonl: valid JSON" true (json_valid line);
      Alcotest.(check bool) "diverged with a named site" true
        (t.Campaign.tg_diverged && String.length t.Campaign.tg_insn > 0))
    recs;
  let sites = Campaign.top_sites recs in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 sites in
  let ndiv =
    List.length (List.filter (fun t -> t.Campaign.tg_diverged) recs)
  in
  Alcotest.(check int) "site counts cover diverged records" ndiv total;
  let rec descending = function
    | (_, a) :: ((_, b) :: _ as tl) -> a >= b && descending tl
    | _ -> true
  in
  Alcotest.(check bool) "sites ranked by count" true (descending sites)

let test_triage_deterministic () =
  let p = engine_program () in
  let cfg = flow_cfg ~seed:23 ~n:40 in
  let r = Flows.fault_flow cfg p in
  let a = Flows.fault_triage ~sample:3 cfg p r in
  let b = Flows.fault_triage ~sample:3 cfg p r in
  Alcotest.(check bool) "triage is deterministic" true (a = b)

let () =
  Alcotest.run "fault"
    [ ( "injector",
        [ Alcotest.test_case "golden signature" `Quick test_golden_signature;
          Alcotest.test_case "code flip" `Quick test_code_flip_changes_memory;
          Alcotest.test_case "transient gpr" `Quick test_transient_gpr_flip;
          Alcotest.test_case "x0 masked" `Quick test_x0_fault_masked;
          Alcotest.test_case "unused reg masked" `Quick
            test_unused_register_masked;
          Alcotest.test_case "opcode corruption crashes" `Quick
            test_opcode_corruption_crashes;
          Alcotest.test_case "bound corruption hangs" `Quick
            test_branch_corruption_can_hang ] );
      ( "campaign",
        [ Alcotest.test_case "dead code masked" `Quick
            test_unexecuted_code_fault_masked;
          Alcotest.test_case "untouched data masked" `Quick
            test_untouched_data_fault_masked;
          Alcotest.test_case "late transient masked" `Quick
            test_late_transient_masked;
          Alcotest.test_case "generation determinism" `Quick
            test_generation_determinism;
          Alcotest.test_case "guided sites covered" `Quick
            test_guided_sites_are_covered;
          Alcotest.test_case "summary adds up" `Quick
            test_campaign_summary_adds_up;
          Alcotest.test_case "blind generation" `Quick test_blind_generation;
          campaign_determinism ] );
      ( "engine",
        [ Alcotest.test_case "generation regression" `Quick
            test_generation_regression;
          Alcotest.test_case "jobs deterministic" `Quick
            test_jobs_deterministic;
          Alcotest.test_case "engine matches rerun" `Quick
            test_engine_matches_rerun;
          Alcotest.test_case "engine axes agree" `Quick
            test_engine_axes_agree;
          Alcotest.test_case "mid-block code flip visibility" `Quick
            test_midblock_code_flip_visibility ] );
      ( "hardening",
        [ fault_string_roundtrip;
          Alcotest.test_case "malformed fault errored" `Quick
            test_malformed_fault_errored;
          Alcotest.test_case "wall-clock timeout" `Quick
            test_wallclock_timeout;
          shard_completeness;
          Alcotest.test_case "journal roundtrip + torn tail" `Quick
            test_journal_roundtrip_and_torn_tail;
          resume_differential;
          Alcotest.test_case "resume rejects other campaign" `Quick
            test_resume_rejects_other_campaign;
          Alcotest.test_case "shard merge equals full" `Quick
            test_shard_merge_equals_full;
          Alcotest.test_case "cancel then resume" `Quick
            test_cancellation_partial_then_resume ] );
      ( "triage",
        [ Alcotest.test_case "locates first divergence" `Quick
            test_triage_locates_divergence;
          Alcotest.test_case "flow + jsonl + top sites" `Quick
            test_triage_flow_jsonl_and_top_sites;
          Alcotest.test_case "deterministic" `Quick
            test_triage_deterministic ] ) ]
