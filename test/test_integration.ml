(* Cross-library integration tests: the four flows, the IO guard, and
   multi-component scenarios mirroring the examples. *)

module Machine = S4e_cpu.Machine
module Flows = S4e_core.Flows
module Io_guard = S4e_core.Io_guard

let assemble = S4e_asm.Assembler.assemble_exn

let test_run_flow () =
  let p =
    assemble {|
  .equ UART, 0x10000000
_start:
  li   a1, UART
  li   a2, 'h'
  sb   a2, 0(a1)
  li   a2, 'i'
  sb   a2, 0(a1)
  li   t1, 0x00100000
  sw   zero, 0(t1)
  ebreak
|}
  in
  let r = Flows.run p in
  Alcotest.(check string) "uart output" "hi" r.Flows.rr_uart;
  (match r.Flows.rr_stop with
  | Machine.Exited 0 -> ()
  | _ -> Alcotest.fail "expected clean exit");
  Alcotest.(check bool) "cycles >= instret" true
    (r.Flows.rr_cycles >= r.Flows.rr_instret)

(* the superblocks knob (CLI --no-superblocks) must be behaviorally
   invisible: same stop, counters, and output on a trace-hot loop *)
let test_run_flow_superblocks_knob () =
  let p =
    assemble {|
  li   a0, 0
  li   t0, 50000
loop:
  addi a0, a0, 3
  addi t0, t0, -1
  bnez t0, loop
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
|}
  in
  let on = Flows.run p in
  let off = Flows.run ~superblocks:false p in
  Alcotest.(check bool) "same stop" true (on.Flows.rr_stop = off.Flows.rr_stop);
  Alcotest.(check int) "same instret" off.Flows.rr_instret on.Flows.rr_instret;
  Alcotest.(check int) "same cycles" off.Flows.rr_cycles on.Flows.rr_cycles;
  Alcotest.(check string) "same uart" off.Flows.rr_uart on.Flows.rr_uart

let test_uart_echo_roundtrip () =
  (* target program echoes everything it receives until NUL *)
  let p =
    assemble {|
  .equ UART, 0x10000000
_start:
  li   s0, UART
echo:
  lbu  a0, 4(s0)          # status
  andi a0, a0, 1
  beqz a0, finish         # queue drained
  lbu  a0, 0(s0)
  sb   a0, 0(s0)
  j    echo
finish:
  li   t1, 0x00100000
  sw   zero, 0(t1)
  ebreak
|}
  in
  let m = Machine.create () in
  S4e_asm.Program.load_machine p m;
  S4e_soc.Uart.feed m.Machine.uart "ping";
  let stop = Machine.run m ~fuel:10_000 in
  (match stop with
  | Machine.Exited 0 -> ()
  | _ -> Alcotest.failf "echo failed: %a" Machine.pp_stop_reason stop);
  Alcotest.(check string) "echoed" "ping" (Machine.uart_output m)

let test_gpio_actuation () =
  let p =
    assemble {|
  .equ GPIO, 0x10012000
_start:
  li   a1, GPIO
  li   a2, 0xff
  sw   a2, 0(a1)
  lw   a3, 4(a1)          # read input pins
  li   t1, 0x00100000
  sw   a3, 0(t1)
  ebreak
|}
  in
  let m = Machine.create () in
  S4e_asm.Program.load_machine p m;
  S4e_soc.Gpio.set_input m.Machine.gpio 0x5A;
  let stop = Machine.run m ~fuel:1_000 in
  (match stop with
  | Machine.Exited 0x5A -> ()
  | _ -> Alcotest.failf "gpio read failed: %a" Machine.pp_stop_reason stop);
  Alcotest.(check int) "gpio latched" 0xFF (S4e_soc.Gpio.output m.Machine.gpio)

let test_io_guard_write_policy () =
  let p =
    assemble {|
  .equ UART, 0x10000000
_start:
  li   s0, UART
  lbu  a0, 0(s0)          # read: allowed under Restrict_writes
  sb   a0, 0(s0)          # write outside any allowed range: violation
  li   t1, 0x00100000
  sw   zero, 0(t1)
  ebreak
|}
  in
  let m = Machine.create () in
  let guard =
    Io_guard.attach m
      [ { Io_guard.p_device = "uart"; p_allowed = [];
          p_restrict = Io_guard.Restrict_writes } ]
  in
  S4e_asm.Program.load_machine p m;
  let _ = Machine.run m ~fuel:1_000 in
  let vs = Io_guard.violations guard in
  Alcotest.(check int) "one violation" 1 (List.length vs);
  (match vs with
  | [ v ] ->
      Alcotest.(check bool) "is a write" true v.Io_guard.v_is_write;
      Alcotest.(check string) "device" "uart" v.Io_guard.v_device
  | _ -> assert false);
  (* uart read + uart write + the syscon exit store *)
  Alcotest.(check int) "all accesses observed" 3 (Io_guard.accesses guard)

let test_io_guard_restrict_all () =
  let p =
    assemble {|
  .equ UART, 0x10000000
_start:
  li   s0, UART
  lbu  a0, 0(s0)
  li   t1, 0x00100000
  sw   zero, 0(t1)
  ebreak
|}
  in
  let m = Machine.create () in
  let guard =
    Io_guard.attach m
      [ { Io_guard.p_device = "uart"; p_allowed = [];
          p_restrict = Io_guard.Restrict_all } ]
  in
  S4e_asm.Program.load_machine p m;
  let _ = Machine.run m ~fuel:1_000 in
  Alcotest.(check int) "read flagged too" 1
    (List.length (Io_guard.violations guard))

let test_io_guard_allowed_range () =
  let p =
    assemble {|
  .equ UART, 0x10000000
_start:
  call driver
  li   t1, 0x00100000
  sw   zero, 0(t1)
  ebreak
driver:
  li   t2, UART
  li   t3, 65
  sb   t3, 0(t2)
  ret
|}
  in
  let driver = Option.get (S4e_asm.Program.symbol p "driver") in
  let m = Machine.create () in
  let guard =
    Io_guard.attach m
      [ { Io_guard.p_device = "uart";
          p_allowed = [ (driver, driver + 16) ];
          p_restrict = Io_guard.Restrict_writes } ]
  in
  S4e_asm.Program.load_machine p m;
  let _ = Machine.run m ~fuel:1_000 in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> v.Io_guard.v_device) (Io_guard.violations guard))

let test_io_guard_stacking () =
  (* Two stacked guards: attaching the second must not silence the
     first (the displaced watcher is chained to), and detaching must
     restore the displaced watcher instead of unconditionally clearing
     the bus hook. *)
  let p =
    assemble {|
  .equ UART, 0x10000000
_start:
  li   s0, UART
  lbu  a0, 0(s0)
  sb   a0, 0(s0)
  li   t1, 0x00100000
  sw   zero, 0(t1)
  ebreak
|}
  in
  let m = Machine.create () in
  let g1 =
    Io_guard.attach m
      [ { Io_guard.p_device = "uart"; p_allowed = [];
          p_restrict = Io_guard.Restrict_writes } ]
  in
  let g2 =
    Io_guard.attach m
      [ { Io_guard.p_device = "uart"; p_allowed = [];
          p_restrict = Io_guard.Restrict_all } ]
  in
  let run () =
    S4e_asm.Program.load_machine p m;
    ignore (Machine.run m ~fuel:1_000 : Machine.stop_reason)
  in
  run ();
  (* uart read + uart write + syscon exit store, seen by both guards *)
  Alcotest.(check int) "inner guard observes through the outer" 3
    (Io_guard.accesses g1);
  Alcotest.(check int) "outer guard observes" 3 (Io_guard.accesses g2);
  Alcotest.(check int) "inner flags the write" 1
    (List.length (Io_guard.violations g1));
  Alcotest.(check int) "outer flags read and write" 2
    (List.length (Io_guard.violations g2));
  (* detaching the inner guard while it is not on top is a no-op: the
     outer guard (and the chain through the inner) keeps observing *)
  Io_guard.detach m g1;
  run ();
  Alcotest.(check int) "outer unaffected by inner detach" 6
    (Io_guard.accesses g2);
  Alcotest.(check int) "inner still chained below" 6 (Io_guard.accesses g1);
  (* popping the outer guard reinstates the watcher it displaced *)
  Io_guard.detach m g2;
  run ();
  Alcotest.(check int) "outer detached" 6 (Io_guard.accesses g2);
  Alcotest.(check int) "displaced watcher restored" 9 (Io_guard.accesses g1)

let test_io_guard_device_plane () =
  (* the guard must see MMIO on the new device-plane peripherals: an
     unvetted driver poking DMA and NIC doorbells is exactly the kind
     of access the guard exists to flag *)
  let p =
    assemble {|
  .equ DMA,  0x10020000
  .equ VNET, 0x10030000
_start:
  li   s0, DMA
  lw   a0, 0x18(s0)       # STATUS read: allowed under Restrict_writes
  li   a1, 8
  sw   a1, 0x08(s0)       # TAIL doorbell: violation
  li   s1, VNET
  li   a2, 1
  sw   a2, 0x00(s1)       # CTRL enable: violation
  li   t1, 0x00100000
  sw   zero, 0(t1)
  ebreak
|}
  in
  let m = Machine.create () in
  let guard =
    Io_guard.attach m
      [ { Io_guard.p_device = "dma"; p_allowed = [];
          p_restrict = Io_guard.Restrict_writes };
        { Io_guard.p_device = "vnet"; p_allowed = [];
          p_restrict = Io_guard.Restrict_writes } ]
  in
  S4e_asm.Program.load_machine p m;
  (match Machine.run m ~fuel:1_000 with
  | Machine.Exited 0 -> ()
  | stop -> Alcotest.failf "device run: %a" Machine.pp_stop_reason stop);
  let vs = Io_guard.violations guard in
  Alcotest.(check (list string)) "both doorbells flagged" [ "dma"; "vnet" ]
    (List.map (fun v -> v.Io_guard.v_device) vs);
  List.iter
    (fun v -> Alcotest.(check bool) "is a write" true v.Io_guard.v_is_write)
    vs;
  (* dma read + dma write + vnet write + syscon exit store *)
  Alcotest.(check int) "all accesses observed" 4 (Io_guard.accesses guard)

let test_wcet_flow_on_control_task () =
  let p =
    assemble {|
_start:
  li   s0, 0
  li   s1, 12
accumulate:
  addi s0, s0, 3
  addi s1, s1, -1
  bgtz s1, accumulate
  li   t1, 0x00100000
  sw   s0, 0(t1)
  ebreak
|}
  in
  match Flows.wcet_flow p with
  | Error e -> Alcotest.failf "wcet: %s" (S4e_wcet.Analysis.describe_error e)
  | Ok r ->
      (match r.Flows.wr_stop with
      | Machine.Exited 36 -> ()
      | stop -> Alcotest.failf "wrong result: %a" Machine.pp_stop_reason stop);
      Alcotest.(check bool) "chain" true
        (r.Flows.wr_dynamic <= r.Flows.wr_path
        && r.Flows.wr_path <= r.Flows.wr_static);
      (* loose but meaningful tightness: the bound should be within 3x
         of the actual run for this simple counted loop *)
      Alcotest.(check bool) "not absurdly loose" true
        (r.Flows.wr_static < 3 * r.Flows.wr_dynamic)

let test_fault_flow_guided_vs_blind () =
  let p =
    assemble {|
_start:
  li   a0, 0
  li   a1, 1
  li   a2, 30
l:
  add  a0, a0, a1
  addi a1, a1, 1
  blt  a1, a2, l
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
|}
  in
  let guided =
    Flows.fault_flow
      { Flows.default_fault_config with Flows.ff_mutants = 60; ff_fuel = 50_000 }
      p
  in
  let blind =
    Flows.fault_flow
      { Flows.default_fault_config with
        Flows.ff_mutants = 60; ff_fuel = 50_000; ff_blind = true }
      p
  in
  Alcotest.(check int) "guided total" 60 guided.Flows.ff_summary.S4e_fault.Campaign.total;
  (* blind campaigns waste mutants on unused state, so they mask more *)
  Alcotest.(check bool) "blind masks at least as much" true
    (blind.Flows.ff_summary.S4e_fault.Campaign.masked
     >= guided.Flows.ff_summary.S4e_fault.Campaign.masked)

let test_full_pipeline_on_torture () =
  (* generate -> coverage -> faults -> wcet, all on one program *)
  let p =
    S4e_torture.Torture.generate
      { S4e_torture.Torture.default_config with seed = 2024; segments = 10 }
  in
  let cov = Flows.coverage_of_suite [ ("p", p) ] in
  Alcotest.(check bool) "coverage nonempty" true
    (S4e_coverage.Report.executed_count cov > 0);
  let fr =
    Flows.fault_flow
      { Flows.default_fault_config with Flows.ff_mutants = 20; ff_fuel = 50_000 }
      p
  in
  Alcotest.(check int) "campaign complete" 20
    fr.Flows.ff_summary.S4e_fault.Campaign.total;
  match Flows.wcet_flow ~fuel:50_000 p with
  | Ok r ->
      Alcotest.(check bool) "wcet chain" true
        (r.Flows.wr_dynamic <= r.Flows.wr_path
        && r.Flows.wr_path <= r.Flows.wr_static)
  | Error e -> Alcotest.failf "wcet: %s" (S4e_wcet.Analysis.describe_error e)

let test_wcet_flow_with_annotation () =
  (* data-dependent loop: inference fails, an annotation unblocks it *)
  let p =
    assemble {|
_start:
  la   s0, len
  lw   s1, 0(s0)          # loop bound comes from memory
  li   a0, 0
  li   s2, 0
scan:
  add  a0, a0, s2
  addi s2, s2, 1
  blt  s2, s1, scan
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
  .data
len:
  .word 12
|}
  in
  (match Flows.wcet_flow p with
  | Error (S4e_wcet.Analysis.E_unbounded_loop _) -> ()
  | Error e ->
      Alcotest.failf "wrong error: %s" (S4e_wcet.Analysis.describe_error e)
  | Ok _ -> Alcotest.fail "should need an annotation");
  match Flows.wcet_flow ~annotations:[ ("scan", 16) ] p with
  | Error e -> Alcotest.failf "annotated: %s" (S4e_wcet.Analysis.describe_error e)
  | Ok r ->
      (match r.Flows.wr_stop with
      | Machine.Exited 66 -> ()
      | stop -> Alcotest.failf "wrong result: %a" Machine.pp_stop_reason stop);
      Alcotest.(check bool) "chain with annotation" true
        (r.Flows.wr_dynamic <= r.Flows.wr_path
        && r.Flows.wr_path <= r.Flows.wr_static)

let test_image_file_roundtrip_through_machine () =
  let p =
    assemble {|
_start:
  li   a0, 321
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
|}
  in
  let path = Filename.temp_file "s4e" ".bin" in
  S4e_asm.Program.save p path;
  (match S4e_asm.Program.load_file path with
  | Error m -> Alcotest.failf "load_file: %s" m
  | Ok p' ->
      let r = Flows.run p' in
      (match r.Flows.rr_stop with
      | Machine.Exited 321 -> ()
      | stop -> Alcotest.failf "image run failed: %a" Machine.pp_stop_reason stop));
  Sys.remove path

let test_machine_reset_semantics () =
  let p =
    assemble {|
  .equ UART, 0x10000000
_start:
  li   a1, UART
  li   a2, 'x'
  sb   a2, 0(a1)
  li   t1, 0x00100000
  sw   zero, 0(t1)
  ebreak
|}
  in
  let m = Machine.create () in
  S4e_asm.Program.load_machine p m;
  let _ = Machine.run m ~fuel:1_000 in
  Alcotest.(check string) "first run output" "x" (Machine.uart_output m);
  (* reset clears architectural state, devices, and UART output, but
     keeps memory: the program runs again unmodified *)
  Machine.reset m ~pc:p.S4e_asm.Program.entry;
  Alcotest.(check int) "instret reset" 0 (Machine.instret m);
  Alcotest.(check string) "uart cleared" "" (Machine.uart_output m);
  (match Machine.run m ~fuel:1_000 with
  | Machine.Exited 0 -> ()
  | stop -> Alcotest.failf "second run: %a" Machine.pp_stop_reason stop);
  Alcotest.(check string) "second run output" "x" (Machine.uart_output m)

let test_instret_cycle_csrs_visible () =
  (* software can observe its own progress through the counters *)
  let p =
    assemble {|
_start:
  csrr a0, instret
  csrr a1, instret
  sub  a2, a1, a0
  li   t1, 0x00100000
  sw   a2, 0(t1)
  ebreak
|}
  in
  let r = Flows.run p in
  match r.Flows.rr_stop with
  | Machine.Exited 1 -> ()
  | Machine.Exited n -> Alcotest.failf "instret delta %d, expected 1" n
  | stop -> Alcotest.failf "failed: %a" Machine.pp_stop_reason stop

let () =
  Alcotest.run "integration"
    [ ( "flows",
        [ Alcotest.test_case "run flow" `Quick test_run_flow;
          Alcotest.test_case "superblocks knob invisible" `Quick
            test_run_flow_superblocks_knob;
          Alcotest.test_case "uart echo" `Quick test_uart_echo_roundtrip;
          Alcotest.test_case "gpio actuation" `Quick test_gpio_actuation;
          Alcotest.test_case "wcet flow" `Quick test_wcet_flow_on_control_task;
          Alcotest.test_case "fault flow guided vs blind" `Quick
            test_fault_flow_guided_vs_blind;
          Alcotest.test_case "full pipeline" `Quick
            test_full_pipeline_on_torture;
          Alcotest.test_case "counter csrs" `Quick
            test_instret_cycle_csrs_visible;
          Alcotest.test_case "wcet flow with annotation" `Quick
            test_wcet_flow_with_annotation;
          Alcotest.test_case "image file roundtrip" `Quick
            test_image_file_roundtrip_through_machine;
          Alcotest.test_case "machine reset" `Quick
            test_machine_reset_semantics ] );
      ( "io-guard",
        [ Alcotest.test_case "write policy" `Quick test_io_guard_write_policy;
          Alcotest.test_case "restrict all" `Quick test_io_guard_restrict_all;
          Alcotest.test_case "allowed range" `Quick test_io_guard_allowed_range;
          Alcotest.test_case "device plane visibility" `Quick
            test_io_guard_device_plane;
          Alcotest.test_case "stacked guards" `Quick test_io_guard_stacking ] ) ]
