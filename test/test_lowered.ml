(* Differential tests for the lowered (µop) execution engine.

   The machine has three engines — lowered translation blocks (with and
   without chaining), the generic decoded-array interpreter, and
   single-step decode-dispatch — that must be observationally
   indistinguishable: same stop reason, same instruction and cycle
   counts, and byte-identical [Machine.state_digest ~include_time:true]
   on every program, including ones that trap, take timer interrupts,
   sleep in WFI, rewrite their own code, and run compressed.  These
   tests drive all engines over hand-written corner cases and random
   torture programs and compare.  A TLB-off variant of the default
   engine rides along so the same cases also pin down the bus's
   software TLB (lib/mem/bus.ml). *)

module Machine = S4e_cpu.Machine
module Torture = S4e_torture.Torture

let prop ?(count = 25) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

(* The engines under comparison.  [lowered] is the block engine with
   superblock traces pinned off (the stable reference); [superblocks]
   is the full default config, so every differential case also drives
   the trace engine.  [tlb-off] rides along likewise to prove the
   memory fast path observationally inert. *)
let sb_off c = { c with Machine.superblocks = false }

let engines =
  [ ("lowered", sb_off Machine.default_config);
    ("unchained", sb_off { Machine.default_config with Machine.chain_blocks = false });
    ("generic-tb", sb_off { Machine.default_config with Machine.lower_blocks = false });
    ("single-step", sb_off { Machine.default_config with Machine.use_tb_cache = false });
    ("tlb-off", sb_off { Machine.default_config with Machine.mem_tlb = false });
    ("superblocks", Machine.default_config)
  ]

type outcome = {
  o_stop : string;
  o_digest : string;
  o_instret : int;
  o_cycles : int;
}

let outcome_of m stop =
  { o_stop = Format.asprintf "%a" Machine.pp_stop_reason stop;
    o_digest = Digest.to_hex (Machine.state_digest ~include_time:true m);
    o_instret = Machine.instret m;
    o_cycles = Machine.cycles m }

(* [rig] arms the deterministic device-traffic rig (vnet generator +
   delayed DMA bursts, {!S4e_core.Flows.arm_device_rig}) before the
   run, so the differential also covers DMA invalidation, event-wheel
   ordering, and MEIP sampling. *)
let run_program ?(fuel = 200_000) ?(rig = false) config p =
  let m = Machine.create ~config () in
  S4e_asm.Program.load_machine p m;
  if rig then S4e_core.Flows.arm_device_rig m;
  outcome_of m (Machine.run m ~fuel)

let check_engines_agree ?fuel ?rig p =
  match engines with
  | [] -> assert false
  | (ref_name, ref_config) :: rest ->
      let reference = run_program ?fuel ?rig ref_config p in
      List.iter
        (fun (name, config) ->
          let o = run_program ?fuel ?rig config p in
          Alcotest.(check string)
            (Printf.sprintf "%s vs %s: stop" name ref_name)
            reference.o_stop o.o_stop;
          Alcotest.(check int)
            (Printf.sprintf "%s vs %s: instret" name ref_name)
            reference.o_instret o.o_instret;
          Alcotest.(check int)
            (Printf.sprintf "%s vs %s: cycles" name ref_name)
            reference.o_cycles o.o_cycles;
          Alcotest.(check string)
            (Printf.sprintf "%s vs %s: digest" name ref_name)
            reference.o_digest o.o_digest)
        rest

let differential_asm ?fuel src =
  check_engines_agree ?fuel (S4e_asm.Assembler.assemble_exn src)

(* ---------------- hand-written corner cases ---------------- *)

(* Traps raised from the middle of a translation block: the handler
   skips the trapping instruction, so execution re-enters the block
   body at a non-entry pc. *)
let test_traps_mid_block () =
  differential_asm {|
_start:
  la   t0, handler
  csrw mtvec, t0
  li   s0, 0
  li   s1, 50
tloop:
  ecall
  ebreak
  addi s0, s0, 7
  addi s1, s1, -1
  bnez s1, tloop
  li   t1, 0x00100000
  sw   s0, 0(t1)
handler:
  addi s0, s0, 1
  csrr t2, mepc
  addi t2, t2, 4
  csrw mepc, t2
  mret
|}

(* mtvec pointing at the instruction right after the trap: the generic
   driver keeps executing the same block (pc happens to match), and the
   lowered driver must reproduce that. *)
let test_trap_continues_block () =
  differential_asm {|
_start:
  la   t0, after
  csrw mtvec, t0
  li   s0, 11
  ecall
after:
  addi s0, s0, 22
  li   t1, 0x00100000
  sw   s0, 0(t1)
|}

(* Timer interrupts landing in the middle of a compute loop; the
   handler pushes mtimecmp forward so several fire over the run.  Cycle
   equality here proves interrupt latency is identical across engines
   (batched ticking never defers a timer past a sampling point, and
   single-step samples at the same block boundaries the TB path does). *)
let test_timer_interrupts_during_loop () =
  differential_asm {|
  .equ CLINT, 0x02000000
_start:
  la   t0, handler
  csrw mtvec, t0
  li   t1, CLINT + 0x4000
  li   t2, 40
  sw   t2, 0(t1)          # mtimecmp = 40
  sw   zero, 4(t1)
  li   t3, 0x80
  csrw mie, t3
  csrrsi zero, mstatus, 8
  li   s0, 0
  li   s1, 2000
loop:
  addi s0, s0, 3
  xor  s2, s0, s1
  addi s1, s1, -1
  bnez s1, loop
  add  s0, s0, s3
  li   t4, 0x00100000
  sw   s0, 0(t4)
handler:
  addi s3, s3, 1          # count interrupts
  li   t5, CLINT + 0x4000
  lw   t6, 0(t5)
  addi t6, t6, 97
  sw   t6, 0(t5)
  mret
|}

let test_wfi_wakeup_and_halt () =
  (* timer-driven wakeups, then a final WFI with interrupts disabled
     halts the hart; digests must agree on the halt as well *)
  differential_asm {|
  .equ CLINT, 0x02000000
_start:
  la   t0, handler
  csrw mtvec, t0
  li   t1, CLINT + 0x4000
  li   t2, 30
  sw   t2, 0(t1)
  sw   zero, 4(t1)
  li   t3, 0x80
  csrw mie, t3
  csrrsi zero, mstatus, 8
  li   s1, 3
wait:
  wfi
  bnez s1, wait
  csrw mie, zero          # no wake source left
  wfi                     # -> Wfi_halt
handler:
  addi s1, s1, -1
  li   t5, CLINT + 0x4000
  lw   t6, 0(t5)
  addi t6, t6, 50
  sw   t6, 0(t5)
  mret
|}

(* Reading the cycle and time CSRs from inside hot blocks: forces the
   lowered engine to flush its batched ticks at the observation point. *)
let test_time_observed_mid_block () =
  differential_asm {|
_start:
  li   s1, 300
loop:
  csrr t0, cycle
  csrr t1, time
  add  s0, t0, t1
  addi s1, s1, -1
  bnez s1, loop
  li   t2, 0x00100000
  sw   s0, 0(t2)
|}

let test_fatal_traps_agree () =
  differential_asm {|
_start:
  li  s0, 5
  .word 0x00000057
|};
  differential_asm {|
_start:
  li  t0, 0x80000001
  lw  t1, 0(t0)           # misaligned load, no handler
|}

(* Self-modifying code without fence.i: a store into an already-cached
   block must invalidate it (page-granular) so the next entry
   retranslates.  First pass adds 1, the patched second pass adds 99. *)
let smc_src = {|
_start:
  li   s0, 2
  li   a0, 0
  la   t0, patch
  lw   t1, 0(t0)
loop:
slot:
  addi a0, a0, 1
  addi s0, s0, -1
  beqz s0, done
  la   t2, slot
  sw   t1, 0(t2)
  j    loop
done:
  li   t3, 0x00100000
  sw   a0, 0(t3)
patch:
  addi a0, a0, 99
|}

let test_self_modifying_differential () = differential_asm smc_src

(* ---------------- hooks attach/detach mid-run ---------------- *)

(* The lowered path is only taken while no hooks are installed;
   attaching one mid-run must transparently fall back to the generic
   engine (observing every subsequent event) and detaching must return
   to the lowered path — with no observable difference in the
   architectural trace. *)
let test_hooks_attach_detach_mid_run () =
  let p =
    S4e_asm.Assembler.assemble_exn {|
_start:
  li   s1, 400
loop:
  addi s0, s0, 3
  xor  s2, s0, s1
  addi s1, s1, -1
  bnez s1, loop
  li   t0, 0x00100000
  sw   s0, 0(t0)
|}
  in
  let staged hooked =
    let m = Machine.create () in
    S4e_asm.Program.load_machine p m;
    (* identical fuel staging in both runs so block segmentation and
       interrupt sampling line up *)
    let r1 = Machine.run m ~fuel:100 in
    assert (r1 = Machine.Out_of_fuel);
    let count = ref 0 in
    let id =
      if hooked then
        Some (S4e_cpu.Hooks.on_insn m.Machine.hooks (fun _ _ -> incr count))
      else None
    in
    let r2 = Machine.run m ~fuel:100 in
    assert (r2 = Machine.Out_of_fuel);
    (match id with
    | Some id ->
        Alcotest.(check int) "hook saw every staged instruction" 100 !count;
        S4e_cpu.Hooks.unregister m.Machine.hooks id
    | None -> ());
    let stop = Machine.run m ~fuel:100_000 in
    (Format.asprintf "%a" Machine.pp_stop_reason stop,
     Digest.to_hex (Machine.state_digest ~include_time:true m),
     Machine.cycles m)
  in
  let plain = staged false and hooked = staged true in
  Alcotest.(check bool) "hooked run identical to plain run" true
    (plain = hooked)

(* ---------------- superblock trace invalidation ---------------- *)

(* A hot self-patching loop: runs long enough for the trace engine to
   promote the loop body (promotion needs ~64 block dispatches plus hot
   chain edges), then periodically rewrites an instruction {e inside
   the promoted trace} from within it — the store's invalidation must
   kill the running trace, which bails at the next block boundary with
   exact architectural state.  [mask] sets the patch period; the store
   target alternates branchlessly between a data word and the loop's
   own code. *)
let smc_hot_loop ~iters ~mask =
  Printf.sprintf {|
_start:
  li   s3, 0x00200000
  la   s4, site
  sub  s4, s4, s3
  li   t0, %d
  li   s1, 0
loop:
  addi s1, s1, 1
  andi t1, t0, %d
  seqz t1, t1
  neg  t1, t1
  and  t1, t1, s4
  add  t2, s3, t1
  lw   t3, 0(t2)
  sw   t3, 0(t2)
site:
  addi t0, t0, -1
  bnez t0, loop
  li   t6, 0x00100000
  sw   s1, 0(t6)
  ebreak
|} iters mask

let test_smc_kills_running_trace () =
  (* directed variant with stats assertions: the trace must have been
     promoted, executed, and then invalidated by the in-trace store *)
  let p = S4e_asm.Assembler.assemble_exn (smc_hot_loop ~iters:10_000 ~mask:255) in
  check_engines_agree p;
  let m = Machine.create () in
  S4e_asm.Program.load_machine p m;
  (match Machine.run m ~fuel:200_000 with
  | Machine.Exited _ -> ()
  | stop ->
      Alcotest.failf "smc loop did not exit: %a" Machine.pp_stop_reason stop);
  match Machine.trace_stats m with
  | None -> Alcotest.fail "superblocks disabled in default config"
  | Some s ->
      Alcotest.(check bool) "traces promoted" true
        (s.S4e_cpu.Superblock.sb_promotions > 0);
      Alcotest.(check bool) "traces completed" true
        (s.S4e_cpu.Superblock.sb_completions > 0);
      Alcotest.(check bool) "in-trace SMC store invalidated traces" true
        (s.S4e_cpu.Superblock.sb_invalidations > 0);
      Alcotest.(check bool) "invalidated trace bailed mid-run" true
        (s.S4e_cpu.Superblock.sb_bail_dead > 0)

let smc_trace_agrees seed =
  let iters = 300 + (seed mod 4000) in
  let mask = [| 127; 255; 511 |].(seed mod 3) in
  check_engines_agree (S4e_asm.Assembler.assemble_exn (smc_hot_loop ~iters ~mask));
  true

(* Fault-injector writes landing in promoted trace code: arm a
   permanent code flip after the loop is hot (traces promoted and
   running), then finish the run.  The flip goes through
   [Tb_cache.notify_store], so it must kill the overlapping blocks AND
   their traces; both engines then execute the mutated code. *)
let injector_mid_trace_agrees seed =
  let iters = 4_000 + (seed mod 4_000) in
  let src = Printf.sprintf {|
_start:
  li   t0, %d
  li   s1, 0
loop:
  addi s1, s1, 1
  xori s1, s1, 21
slot:
  addi s1, s1, 3
  addi t0, t0, -1
  bnez t0, loop
  li   t6, 0x00100000
  sw   s1, 0(t6)
  ebreak
|} iters
  in
  let p = S4e_asm.Assembler.assemble_exn src in
  let slot =
    match S4e_asm.Program.symbol p "slot" with
    | Some a -> a
    | None -> Alcotest.fail "no slot symbol"
  in
  (* flip a bit of slot's immediate: stays a decodable addi, so the
     run completes with a different checksum on both engines *)
  let bit = 20 + (seed mod 12) in
  let fault =
    { S4e_fault.Fault.loc = S4e_fault.Fault.Code (slot, bit);
      kind = S4e_fault.Fault.Permanent }
  in
  let staged config =
    let m = Machine.create ~config () in
    S4e_asm.Program.load_machine p m;
    let r1 = Machine.run m ~fuel:2_000 in
    assert (r1 = Machine.Out_of_fuel);
    let _armed = S4e_fault.Injector.arm m fault in
    let stop = Machine.run m ~fuel:1_000_000 in
    (outcome_of m stop, Machine.trace_stats m)
  in
  let on, st = staged Machine.default_config in
  let off, _ = staged (sb_off Machine.default_config) in
  (match st with
  | Some s ->
      (* non-vacuity: the loop was hot enough to promote before the flip *)
      if s.S4e_cpu.Superblock.sb_promotions = 0 then
        QCheck.Test.fail_report "no trace promoted before injector write"
  | None -> QCheck.Test.fail_report "superblocks disabled");
  on = off

(* ---------------- random torture programs ---------------- *)

let torture_agrees ?rig ~compress seed =
  let cfg = { Torture.default_config with Torture.seed; compress } in
  let p = Torture.generate cfg in
  check_engines_agree ?rig ~fuel:(Torture.fuel_bound cfg) p;
  true

(* A guest driver over the device plane: DMA burst with completion IRQ
   serviced from WFI, then the per-byte PIO tap — every engine must
   sample MEIP at the same boundaries and fast-forward WFI to the same
   event deadlines. *)
let test_device_driver_agrees () =
  differential_asm {|
  .equ DMA,  0x10020000
  .equ VNET, 0x10030000
_start:
  la   t0, handler
  csrw mtvec, t0
  li   t0, 0x800
  csrw mie, t0
  csrrsi zero, mstatus, 8
  # one 64-byte DMA burst out of the code-adjacent data area
  la   a0, ring
  la   a1, src
  la   a2, dst
  sw   a1, 0(a0)
  sw   a2, 4(a0)
  li   t1, 64
  sw   t1, 8(a0)
  li   t1, 1
  sw   t1, 12(a0)
  li   s0, DMA
  sw   a0, 0x00(s0)
  li   t1, 1
  sw   t1, 0x04(s0)
  sw   t1, 0x14(s0)
  sw   t1, 0x08(s0)
wait:
  lw   t1, 0x20(s0)
  beqz t1, sleep
  j    drained
sleep:
  wfi
  j    wait
drained:
  # drain 32 stream bytes through the PIO tap
  li   s1, VNET
  li   t2, 9
  sw   t2, 0x2C(s1)
  li   s2, 0
  li   s3, 32
  li   s4, 0
pio:
  lw   t3, 0x50(s1)
  add  s4, s4, t3
  addi s2, s2, 1
  blt  s2, s3, pio
  lw   t4, 0(a2)        # first copied word
  add  a0, s4, t4
  li   t6, 0x00100000
  sw   a0, 0(t6)
  ebreak
handler:
  li   t5, DMA
  lw   t4, 0x10(t5)
  sw   t4, 0x10(t5)
  mret
  .data
ring:
  .space 16
src:
  .word 0x11223344, 2, 3, 4, 5, 6, 7, 8
  .space 32
dst:
  .space 64
|}

let props =
  [ prop "torture: engines agree" seed_gen (torture_agrees ~compress:false);
    prop ~count:15 "torture (compressed): engines agree" seed_gen
      (torture_agrees ~compress:true);
    prop ~count:15 "torture + device rig: engines agree" seed_gen
      (torture_agrees ~rig:true ~compress:false) ]

let sb_props =
  [ prop ~count:15 "smc in hot trace: engines agree" seed_gen smc_trace_agrees;
    prop ~count:10 "injector write mid-trace: engines agree" seed_gen
      injector_mid_trace_agrees ]

let () =
  Alcotest.run "lowered"
    [ ("differential",
       [ Alcotest.test_case "traps mid-block" `Quick test_traps_mid_block;
         Alcotest.test_case "trap continues block" `Quick
           test_trap_continues_block;
         Alcotest.test_case "timer interrupts during loop" `Quick
           test_timer_interrupts_during_loop;
         Alcotest.test_case "wfi wakeup and halt" `Quick
           test_wfi_wakeup_and_halt;
         Alcotest.test_case "time observed mid-block" `Quick
           test_time_observed_mid_block;
         Alcotest.test_case "fatal traps agree" `Quick test_fatal_traps_agree;
         Alcotest.test_case "self-modifying code" `Quick
           test_self_modifying_differential;
         Alcotest.test_case "hooks attach/detach mid-run" `Quick
           test_hooks_attach_detach_mid_run;
         Alcotest.test_case "device driver (dma irq + pio)" `Quick
           test_device_driver_agrees ]);
      ("superblocks",
       Alcotest.test_case "smc kills running trace" `Quick
         test_smc_kills_running_trace
       :: sb_props);
      ("torture", props) ]
