(* Tests for the unified telemetry layer (s4e_obs) and its wiring.

   The load-bearing properties: telemetry is observationally inert
   (digest-identical runs with and without a profiler attached, on the
   lowered engine), its numbers agree with the independent witnesses we
   already trust (Tracer.stats, campaign summaries), and the exported
   artifacts (metric snapshots, trace-event JSON) are well-formed. *)

module Machine = S4e_cpu.Machine
module Metrics = S4e_obs.Metrics
module Trace_events = S4e_obs.Trace_events
module Profile = S4e_obs.Profile
module Torture = S4e_torture.Torture
module Flows = S4e_core.Flows

let prop ?(count = 10) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

(* naive substring search; the haystacks here are tiny JSON buffers *)
let contains s ~affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let check_infix what s affix =
  Alcotest.(check bool) (what ^ ": contains " ^ affix) true
    (contains s ~affix)

(* ---------------- metrics registry ---------------- *)

let test_counter_basics () =
  let t = Metrics.create () in
  let c = Metrics.counter t "events" in
  Metrics.incr c;
  Metrics.add c 5;
  Alcotest.(check int) "value" 6 (Metrics.value c);
  (* registration is idempotent by name: same instrument comes back *)
  let c' = Metrics.counter t "events" in
  Metrics.incr c';
  Alcotest.(check int) "shared" 7 (Metrics.value c);
  Alcotest.(check (list (pair string int)))
    "snapshot"
    [ ("events", 7) ]
    (List.map
       (fun (k, v) ->
         (k, match v with Metrics.Int i -> i | Metrics.Float _ -> -1))
       (Metrics.snapshot t))

let test_shape_conflict () =
  let t = Metrics.create () in
  let (_ : Metrics.counter) = Metrics.counter t "x" in
  Alcotest.check_raises "counter vs histogram"
    (Invalid_argument "Metrics: x already bound to another shape")
    (fun () -> ignore (Metrics.histogram t "x" ~bounds:[| 1 |]))

let test_gauges () =
  let t = Metrics.create () in
  let cell = ref 0 in
  Metrics.gauge_int t "cell" (fun () -> !cell);
  Metrics.gauge_float t "ratio" (fun () -> 0.5);
  cell := 42;
  let snap = Metrics.snapshot t in
  Alcotest.(check bool)
    "int gauge probed at snapshot time" true
    (List.assoc "cell" snap = Metrics.Int 42);
  Alcotest.(check bool)
    "float gauge" true
    (List.assoc "ratio" snap = Metrics.Float 0.5)

let test_histogram () =
  let t = Metrics.create () in
  let h = Metrics.histogram t "lat" ~bounds:[| 10; 100 |] in
  List.iter (Metrics.observe h) [ 1; 10; 11; 100; 5000 ];
  let snap = Metrics.snapshot t in
  let geti k =
    match List.assoc k snap with Metrics.Int i -> i | _ -> -1
  in
  Alcotest.(check int) "le_10" 2 (geti "lat.le_10");
  Alcotest.(check int) "le_100" 2 (geti "lat.le_100");
  Alcotest.(check int) "le_inf" 1 (geti "lat.le_inf");
  Alcotest.(check int) "count" 5 (geti "lat.count");
  Alcotest.(check int) "sum" 5122 (geti "lat.sum");
  Alcotest.check_raises "unsorted bounds"
    (Invalid_argument "Metrics: bad: bounds must be ascending") (fun () ->
      ignore (Metrics.histogram t "bad" ~bounds:[| 5; 5 |]))

let test_snapshot_sorted () =
  let t = Metrics.create () in
  List.iter
    (fun n -> ignore (Metrics.counter t n))
    [ "zz"; "aa"; "mm" ];
  let names = List.map fst (Metrics.snapshot t) in
  Alcotest.(check (list string)) "sorted" [ "aa"; "mm"; "zz" ] names

let test_json_export () =
  let t = Metrics.create () in
  let c = Metrics.counter t "events" in
  Metrics.add c 3;
  Metrics.gauge_float t "bad_probe" (fun () -> Float.nan);
  Metrics.gauge_float t "ratio" (fun () -> 0.25) ;
  let json = Metrics.to_json t in
  Alcotest.(check bool) "object" true
    (String.length json > 2 && json.[0] = '{');
  check_infix "json" json "\"events\": 3";
  check_infix "json" json "\"ratio\": 0.25";
  check_infix "json" json
    (Printf.sprintf "\"s4e_metrics_schema\": %d" Metrics.schema_version);
  (* non-finite probe values are clamped so the JSON stays parseable *)
  check_infix "json" json "\"bad_probe\": 0";
  Alcotest.(check bool) "no nan literal" false (contains json ~affix:"nan")

(* a registry counter is safe to bump from several domains at once *)
let test_counter_cross_domain () =
  let t = Metrics.create () in
  let c = Metrics.counter t "hits" in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Metrics.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "all increments survived" 40_000 (Metrics.value c)

(* ---------------- trace-event sink ---------------- *)

let test_trace_span_and_shape () =
  let t = Trace_events.create () in
  Trace_events.thread_name t ~tid:0 "main";
  Trace_events.thread_name t ~tid:0 "main" (* deduplicated *);
  let r = Trace_events.span t ~name:"work" ~cat:"test" (fun () -> 17) in
  Alcotest.(check int) "span returns" 17 r;
  Trace_events.instant t ~name:"mark" ~cat:"test" ~tid:3 ();
  Alcotest.(check int) "events (name dedup)" 3 (Trace_events.events t);
  let s = Trace_events.contents t in
  Alcotest.(check bool) "array" true (s.[0] = '[');
  List.iter (check_infix "trace" s)
    [ "\"ph\":\"X\""; "\"ph\":\"i\""; "\"ph\":\"M\""; "\"name\":\"work\"";
      "\"tid\":3"; "thread_name" ]

let test_trace_span_on_exception () =
  let t = Trace_events.create () in
  (try
     Trace_events.span t ~name:"boom" ~cat:"test" (fun () ->
         failwith "expected")
   with Failure _ -> ());
  Alcotest.(check int) "span emitted despite raise" 1
    (Trace_events.events t);
  check_infix "trace" (Trace_events.contents t) "\"name\":\"boom\""

(* ---------------- profiler: inert + consistent ---------------- *)

let digest_of ?profile p =
  let m = Machine.create () in
  (match profile with
  | Some prof -> Machine.set_profiler m (Some prof)
  | None -> ());
  S4e_asm.Program.load_machine p m;
  let stop = Machine.run m ~fuel:200_000 in
  ( Format.asprintf "%a" Machine.pp_stop_reason stop,
    Digest.to_hex (Machine.state_digest ~include_time:true m),
    Machine.instret m,
    Machine.cycles m )

(* attaching a profiler must not perturb the lowered engine at all *)
let prop_profiler_inert =
  prop ~count:15 "profiler attached vs detached: identical run" seed_gen
    (fun seed ->
      let p =
        Torture.generate { Torture.default_config with Torture.seed }
      in
      let plain = digest_of p in
      let prof = Profile.create () in
      let profiled = digest_of ~profile:prof p in
      plain = profiled)

(* the profiler's aggregate instruction count is exact: it equals the
   machine's own retired-instruction counter on every run *)
let prop_profiler_totals =
  prop ~count:15 "profiler totals match machine counters" seed_gen
    (fun seed ->
      let p =
        Torture.generate { Torture.default_config with Torture.seed }
      in
      let prof = Profile.create () in
      let m = Machine.create () in
      Machine.set_profiler m (Some prof);
      S4e_asm.Program.load_machine p m;
      let (_ : Machine.stop_reason) = Machine.run m ~fuel:200_000 in
      Profile.total_instrs prof = Machine.instret m
      && Profile.total_cycles prof = Machine.cycles m
      && Profile.total_execs prof > 0)

(* metric gauges and the (hook-based, generic-engine) tracer agree on
   what ran: same program, deterministic execution, independent
   witnesses *)
let prop_metrics_match_tracer =
  prop ~count:10 "machine gauges match Tracer.stats" seed_gen (fun seed ->
      let p =
        Torture.generate { Torture.default_config with Torture.seed }
      in
      (* profiled run on the lowered engine *)
      let prof = Profile.create () in
      let reg = Metrics.create () in
      let m = Machine.create () in
      Machine.set_profiler m (Some prof);
      Machine.register_metrics m reg;
      S4e_asm.Program.load_machine p m;
      let (_ : Machine.stop_reason) = Machine.run m ~fuel:200_000 in
      (* traced run: hooks force the generic path — an independent
         per-instruction witness of the same deterministic program *)
      let mt = Machine.create () in
      let tracer = S4e_cpu.Tracer.attach mt.Machine.hooks ~depth:4 in
      S4e_asm.Program.load_machine p mt;
      let (_ : Machine.stop_reason) = Machine.run mt ~fuel:200_000 in
      let ts = S4e_cpu.Tracer.stats tracer in
      let snap = Metrics.snapshot reg in
      List.assoc "machine.instret" snap
        = Metrics.Int ts.S4e_cpu.Tracer.st_instructions
      && Profile.total_instrs prof = ts.S4e_cpu.Tracer.st_instructions)

(* ---------------- flight recorder ---------------- *)

module Flight_recorder = S4e_obs.Flight_recorder

let rec_sb_off c = { c with Machine.superblocks = false }

(* the six engine configs the lowered differential suite exercises *)
let rec_engines =
  [ ("lowered", rec_sb_off Machine.default_config);
    ("unchained",
     rec_sb_off { Machine.default_config with Machine.chain_blocks = false });
    ("generic-tb",
     rec_sb_off { Machine.default_config with Machine.lower_blocks = false });
    ("single-step",
     rec_sb_off { Machine.default_config with Machine.use_tb_cache = false });
    ("tlb-off",
     rec_sb_off { Machine.default_config with Machine.mem_tlb = false });
    ("superblocks", Machine.default_config) ]

let rec_outcome_of ?config ?recorder p =
  let m = Machine.create ?config () in
  (match recorder with
  | Some r -> Machine.set_recorder m (Some r)
  | None -> ());
  S4e_asm.Program.load_machine p m;
  let stop = Machine.run m ~fuel:200_000 in
  ( Format.asprintf "%a" Machine.pp_stop_reason stop,
    Digest.to_hex (Machine.state_digest ~include_time:true m),
    Machine.instret m,
    Machine.cycles m )

(* tentpole invariant: an armed recorder is observationally inert on
   every engine config — identical digest, stop reason, instret, and
   cycle count *)
let prop_recorder_inert =
  prop ~count:8 "recorder armed vs unarmed: identical run on every engine"
    seed_gen (fun seed ->
      let p =
        Torture.generate { Torture.default_config with Torture.seed }
      in
      List.for_all
        (fun (_, config) ->
          let plain = rec_outcome_of ~config p in
          let r = Flight_recorder.create ~capacity:64 () in
          let recorded = rec_outcome_of ~config ~recorder:r p in
          plain = recorded && Flight_recorder.seq r > 0)
        rec_engines)

(* arming and disarming mid-run (between run calls) is equally inert;
   both runs use identical fuel segmentation so the recorder is the
   only difference *)
let prop_recorder_arm_disarm_inert =
  prop ~count:8 "mid-run arm/disarm: identical run" seed_gen (fun seed ->
      let p =
        Torture.generate { Torture.default_config with Torture.seed }
      in
      let segmented arm =
        let m = Machine.create () in
        S4e_asm.Program.load_machine p m;
        let stop = ref (Machine.run m ~fuel:1_000) in
        if !stop = Machine.Out_of_fuel then begin
          if arm then
            Machine.set_recorder m
              (Some (Flight_recorder.create ~capacity:128 ()));
          stop := Machine.run m ~fuel:1_000
        end;
        if !stop = Machine.Out_of_fuel then begin
          Machine.set_recorder m None;
          stop := Machine.run m ~fuel:198_000
        end;
        ( Format.asprintf "%a" Machine.pp_stop_reason !stop,
          Digest.to_hex (Machine.state_digest ~include_time:true m),
          Machine.instret m,
          Machine.cycles m )
      in
      segmented false = segmented true)

let push_retire r i =
  Flight_recorder.retire r ~pc:i ~op:i ~rd:(-1) ~rd_val:0 ~addr:(-1)
    ~width:0 ~value:0 ~store:false

let rec_seqs r =
  List.map (fun rc -> rc.Flight_recorder.r_seq) (Flight_recorder.records r)

let test_ring_wraparound () =
  let r = Flight_recorder.create ~capacity:4 () in
  for i = 0 to 9 do
    push_retire r i
  done;
  Alcotest.(check int) "seq counts every record" 10 (Flight_recorder.seq r);
  Alcotest.(check int) "length capped at capacity" 4
    (Flight_recorder.length r);
  Alcotest.(check (list int)) "newest survive, oldest first" [ 6; 7; 8; 9 ]
    (rec_seqs r);
  Alcotest.(check (list int)) "slots hold their own payloads" [ 6; 7; 8; 9 ]
    (List.map
       (fun rc -> rc.Flight_recorder.r_pc)
       (Flight_recorder.records r));
  Flight_recorder.clear r;
  Alcotest.(check int) "clear empties" 0 (Flight_recorder.length r);
  Alcotest.(check int) "clear resets numbering" 0 (Flight_recorder.seq r)

let test_mark_rewind () =
  let r = Flight_recorder.create ~capacity:4 () in
  push_retire r 0;
  push_retire r 1;
  let m = Flight_recorder.mark r in
  push_retire r 2;
  push_retire r 3;
  Flight_recorder.rewind r m;
  Alcotest.(check int) "seq restored" 2 (Flight_recorder.seq r);
  Alcotest.(check (list int)) "pre-mark records intact" [ 0; 1 ]
    (rec_seqs r);
  (* write far enough past the mark to clobber the pre-mark slots *)
  for i = 2 to 6 do
    push_retire r i
  done;
  Alcotest.(check (list int)) "ring wrapped past the mark" [ 3; 4; 5; 6 ]
    (rec_seqs r);
  Flight_recorder.rewind r m;
  Alcotest.(check int) "seq restored exactly" 2 (Flight_recorder.seq r);
  (* the overwritten pre-mark records are gone; the rewound window must
     not fabricate them *)
  Alcotest.(check (list int)) "no fabricated records" [] (rec_seqs r)

(* machine snapshot/restore carries the recorder mark: a campaign fork
   rewinds the recording and replays it with continuous, identical
   sequence numbering *)
let test_recorder_snapshot_restore () =
  let p =
    S4e_asm.Assembler.assemble_exn
      {|
_start:
  li   a0, 0
  li   a1, 4000
again:
  addi a0, a0, 1
  bne  a0, a1, again
  ebreak
|}
  in
  let m = Machine.create () in
  let r = Flight_recorder.create ~capacity:512 () in
  Machine.set_recorder m (Some r);
  S4e_asm.Program.load_machine p m;
  let (_ : Machine.stop_reason) = Machine.run m ~fuel:100 in
  let seq0 = Flight_recorder.seq r in
  let snap = Machine.snapshot m in
  let (_ : Machine.stop_reason) = Machine.run m ~fuel:50 in
  let seq1 = Flight_recorder.seq r in
  let recs1 = Flight_recorder.records r in
  Alcotest.(check bool) "recording advanced" true (seq1 > seq0);
  Machine.restore m snap;
  Alcotest.(check int) "restore rewinds the recorder" seq0
    (Flight_recorder.seq r);
  let (_ : Machine.stop_reason) = Machine.run m ~fuel:50 in
  Alcotest.(check int) "replay re-records the same window" seq1
    (Flight_recorder.seq r);
  Alcotest.(check bool) "replayed records identical" true
    (Flight_recorder.records r = recs1)

(* symbol labels must never be empty: anonymous / stripped table
   entries fall back to the resolved base address *)
let test_sym_label_empty_names () =
  let s =
    Profile.symbolizer_of_symbols
      [ ("", 0x1000); ("known", 0x2000); ("", 0x3000) ]
  in
  Alcotest.(check string) "empty name at offset" "0x00001000+0x1c"
    (Profile.sym_label s 0x101c);
  Alcotest.(check string) "empty name at base" "0x00001000"
    (Profile.sym_label s 0x1000);
  Alcotest.(check string) "named symbol unaffected" "known+0x8"
    (Profile.sym_label s 0x2008);
  Alcotest.(check string) "below first symbol" "0x00000040"
    (Profile.sym_label s 0x40);
  (* [functions] aggregation takes the same fallback *)
  let prof = Profile.create () in
  Profile.note prof ~pc:0x3010 ~bytes:8 ~instrs:2 ~cycles:4;
  match Profile.functions ~symbolize:s prof with
  | [ row ] ->
      Alcotest.(check string) "aggregated under base label" "0x00003000"
        row.Profile.f_name
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

(* the acceptance criterion: on a known loop workload the profiler must
   rank the loop body's block first, attributed to the loop symbol *)
let test_hot_loop_ranked_first () =
  let p =
    S4e_asm.Assembler.assemble_exn
      {|
_start:
  li   a0, 0
  li   a1, 5000
hot_loop:
  addi a0, a0, 1
  bne  a0, a1, hot_loop
  li   t0, 0x00100000
  sw   a0, 0(t0)
  ebreak
|}
  in
  let r = Flows.profile_flow p in
  let loop_pc = List.assoc "hot_loop" p.S4e_asm.Program.symbols in
  (match Profile.ranked r.Flows.pf_profile with
  | [] -> Alcotest.fail "no blocks profiled"
  | top :: _ ->
      Alcotest.(check int) "hottest block is the loop head" loop_pc
        top.Profile.bl_pc;
      Alcotest.(check bool) "dominates executions" true
        (top.Profile.bl_execs > 4_000));
  Alcotest.(check bool) "symbolized to the loop label" true
    (match r.Flows.pf_symbolize loop_pc with
    | Some ("hot_loop", 0) -> true
    | _ -> false);
  (match Profile.functions ~symbolize:r.Flows.pf_symbolize r.Flows.pf_profile
   with
  | [] -> Alcotest.fail "no function rows"
  | fr :: _ ->
      Alcotest.(check string) "hottest function" "hot_loop"
        fr.Profile.f_name;
      Alcotest.(check bool) "majority share" true (fr.Profile.f_share > 0.5))

(* ---------------- campaign telemetry ---------------- *)

let campaign_program =
  lazy
    (S4e_asm.Assembler.assemble_exn
       {|
_start:
  li   a0, 0
  li   a1, 400
again:
  addi a0, a0, 1
  bne  a0, a1, again
  li   t0, 0x00100000
  sw   zero, 0(t0)
  ebreak
|})

let test_campaign_metrics_and_trace () =
  let p = Lazy.force campaign_program in
  let reg = Metrics.create () in
  let sink = Trace_events.create () in
  let cfg =
    { Flows.default_fault_config with
      Flows.ff_mutants = 30;
      Flows.ff_fuel = 100_000;
      Flows.ff_hang_budget = Flows.Hang_auto }
  in
  let r = Flows.fault_flow ~jobs:2 ~metrics:reg ~trace:sink cfg p in
  let s = r.Flows.ff_summary in
  let snap = Metrics.snapshot reg in
  let geti k = match List.assoc k snap with Metrics.Int i -> i | _ -> -1 in
  Alcotest.(check int) "campaign.mutants = total" s.S4e_fault.Campaign.total
    (geti "campaign.mutants");
  Alcotest.(check int) "campaign.mutants = requested" 30
    (geti "campaign.mutants");
  Alcotest.(check int) "campaign.hangs = summary.hung"
    s.S4e_fault.Campaign.hung (geti "campaign.hangs");
  (* mutants resolved from a finished golden run never execute, so the
     per-mutant instruction histogram may cover slightly fewer *)
  let hcount = geti "campaign.mutant_insns.count" in
  Alcotest.(check bool) "histogram populated" true
    (hcount > 0 && hcount <= 30);
  Alcotest.(check bool) "early-exit counter present" true
    (geti "campaign.early_exits" >= 0);
  Alcotest.(check bool) "fork counter present" true
    (geti "campaign.snapshot_forks" >= 0);
  (* the trace must cover the flow phases, per-mutant spans, and at
     least one chunk per participating domain *)
  let s' = Trace_events.contents sink in
  List.iter (check_infix "trace" s')
    [ "\"name\":\"campaign\""; "\"name\":\"golden-trace\"";
      "\"cat\":\"mutant\""; "\"name\":\"chunk\"" ];
  Alcotest.(check bool) "enough events" true (Trace_events.events sink > 30);
  (* telemetry must not change outcomes: same campaign, no telemetry *)
  let r' = Flows.fault_flow ~jobs:2 cfg p in
  Alcotest.(check bool) "outcomes unaffected by telemetry" true
    (r.Flows.ff_summary = r'.Flows.ff_summary)

let test_pool_stats () =
  S4e_par.Par_pool.with_pool ~jobs:3 (fun pool ->
      let out =
        S4e_par.Par_pool.map_chunked ~chunk:2 pool
          (fun x -> x * x)
          (List.init 40 Fun.id)
      in
      Alcotest.(check int) "results" 40 (List.length out);
      let st = S4e_par.Par_pool.stats pool in
      Alcotest.(check int) "one slot per worker incl. submitter" 3
        (Array.length st);
      let chunks =
        Array.fold_left
          (fun a w -> a + w.S4e_par.Par_pool.ws_chunks)
          0 st
      in
      Alcotest.(check int) "every chunk accounted" 20 chunks;
      Array.iter
        (fun w ->
          Alcotest.(check bool) "idle time non-negative" true
            (w.S4e_par.Par_pool.ws_idle_s >= 0.0))
        st;
      let reg = Metrics.create () in
      S4e_par.Par_pool.register_metrics pool reg;
      let snap = Metrics.snapshot reg in
      Alcotest.(check bool) "pool.workers gauge" true
        (List.assoc "pool.workers" snap = Metrics.Int 3);
      Alcotest.(check bool) "pool.chunks totalled" true
        (List.assoc "pool.chunks" snap = Metrics.Int 20))

let test_pool_idle_monotone () =
  (* Idle time is accumulated around every Condition.wait, so it must
     be (a) monotone across maps and (b) strictly positive once workers
     have blocked waiting for work — a spurious-wakeup-tolerant
     accounting would under-report but never decrease. *)
  S4e_par.Par_pool.with_pool ~jobs:3 (fun pool ->
      let idle () =
        Array.map
          (fun w -> w.S4e_par.Par_pool.ws_idle_s)
          (S4e_par.Par_pool.stats pool)
      in
      let work x =
        if x = 0 then Unix.sleepf 0.005;
        x * 2
      in
      let before = ref (idle ()) in
      let grew = ref false in
      for _ = 1 to 3 do
        ignore
          (S4e_par.Par_pool.map_chunked ~chunk:1 pool work
             (List.init 20 Fun.id));
        let after = idle () in
        Array.iteri
          (fun i b ->
            Alcotest.(check bool) "idle monotone per worker" true
              (after.(i) >= b);
            if after.(i) > b then grew := true)
          !before;
        before := after
      done;
      Alcotest.(check bool) "idle time accumulates across maps" true !grew)

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "shape conflict" `Quick test_shape_conflict;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
          Alcotest.test_case "json export" `Quick test_json_export;
          Alcotest.test_case "cross-domain counter" `Quick
            test_counter_cross_domain ] );
      ( "trace-events",
        [ Alcotest.test_case "span and shape" `Quick
            test_trace_span_and_shape;
          Alcotest.test_case "span on exception" `Quick
            test_trace_span_on_exception ] );
      ( "profiler",
        [ prop_profiler_inert; prop_profiler_totals;
          Alcotest.test_case "sym label empty names" `Quick
            test_sym_label_empty_names;
          prop_metrics_match_tracer;
          Alcotest.test_case "hot loop ranked first" `Quick
            test_hot_loop_ranked_first ] );
      ( "flight-recorder",
        [ prop_recorder_inert; prop_recorder_arm_disarm_inert;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "mark/rewind" `Quick test_mark_rewind;
          Alcotest.test_case "snapshot/restore continuity" `Quick
            test_recorder_snapshot_restore ] );
      ( "campaign",
        [ Alcotest.test_case "metrics + trace" `Quick
            test_campaign_metrics_and_trace;
          Alcotest.test_case "pool stats" `Quick test_pool_stats;
          Alcotest.test_case "pool idle monotone" `Quick
            test_pool_idle_monotone ] ) ]
