(* Device model tests: UART, CLINT, GPIO, syscon, memory map, and the
   event-driven device plane (wheel, DMA engine, vnet). *)

module Uart = S4e_soc.Uart
module Clint = S4e_soc.Clint
module Gpio = S4e_soc.Gpio
module Syscon = S4e_soc.Syscon
module Map = S4e_soc.Memory_map
module Bus = S4e_mem.Bus
module Mem = S4e_mem.Sparse_mem
module Wheel = S4e_soc.Event_wheel
module Dma = S4e_soc.Dma
module Vnet = S4e_soc.Vnet

let test_uart_tx () =
  let u = Uart.create () in
  let d = Uart.device u ~base:0 in
  String.iter (fun c -> d.Bus.dev_write Uart.data_offset 1 (Char.code c)) "hi!";
  Alcotest.(check string) "output" "hi!" (Uart.output u);
  Uart.clear_output u;
  Alcotest.(check string) "cleared" "" (Uart.output u)

let test_uart_tx_callback () =
  let seen = Buffer.create 8 in
  let u = Uart.create ~on_tx:(Buffer.add_char seen) () in
  let d = Uart.device u ~base:0 in
  d.Bus.dev_write Uart.data_offset 1 (Char.code 'x');
  Alcotest.(check string) "live forwarding" "x" (Buffer.contents seen)

let test_uart_rx () =
  let u = Uart.create () in
  let d = Uart.device u ~base:0 in
  Alcotest.(check int) "status empty" 0b10 (d.Bus.dev_read Uart.status_offset 1);
  Alcotest.(check int) "read empty" 0 (d.Bus.dev_read Uart.data_offset 1);
  Uart.feed u "ab";
  Alcotest.(check int) "status ready" 0b11 (d.Bus.dev_read Uart.status_offset 1);
  Alcotest.(check int) "first byte" (Char.code 'a')
    (d.Bus.dev_read Uart.data_offset 1);
  Alcotest.(check int) "second byte" (Char.code 'b')
    (d.Bus.dev_read Uart.data_offset 1);
  Alcotest.(check int) "drained" 0b10 (d.Bus.dev_read Uart.status_offset 1)

let test_clint_timer () =
  let c = Clint.create () in
  Alcotest.(check bool) "not pending at reset" false (Clint.timer_pending c);
  Clint.set_timecmp c 100;
  Clint.tick c 99;
  Alcotest.(check bool) "not yet" false (Clint.timer_pending c);
  Clint.tick c 1;
  Alcotest.(check bool) "pending at cmp" true (Clint.timer_pending c);
  Alcotest.(check int) "time" 100 (Clint.time c)

let test_clint_registers () =
  let c = Clint.create () in
  let d = Clint.device c ~base:0 in
  d.Bus.dev_write 0x4000 4 0x1234;
  d.Bus.dev_write 0x4004 4 0x1;
  Alcotest.(check int) "timecmp assembled" 0x1_0000_1234 (Clint.timecmp c);
  Alcotest.(check int) "timecmp lo" 0x1234 (d.Bus.dev_read 0x4000 4);
  Alcotest.(check int) "timecmp hi" 0x1 (d.Bus.dev_read 0x4004 4);
  Clint.tick c 0xABCD;
  Alcotest.(check int) "mtime lo" 0xABCD (d.Bus.dev_read 0xBFF8 4);
  d.Bus.dev_write 0x0000 4 1;
  Alcotest.(check bool) "msip" true (Clint.software_pending c);
  Alcotest.(check int) "msip reads back" 1 (d.Bus.dev_read 0x0000 4);
  Clint.reset c;
  Alcotest.(check bool) "reset clears" false (Clint.software_pending c);
  Alcotest.(check int) "reset time" 0 (Clint.time c)

let test_gpio () =
  let changes = ref [] in
  let g = Gpio.create ~on_output:(fun v -> changes := v :: !changes) () in
  let d = Gpio.device g ~base:0 in
  d.Bus.dev_write 0 4 0xF0;
  d.Bus.dev_write 0 4 0xF0;  (* unchanged: no callback *)
  d.Bus.dev_write 0 4 0x0F;
  Alcotest.(check (list int)) "output changes" [ 0x0F; 0xF0 ] !changes;
  Alcotest.(check int) "latch reads back" 0x0F (d.Bus.dev_read 0 4);
  Gpio.set_input g 0xAA;
  Alcotest.(check int) "input pins" 0xAA (d.Bus.dev_read 4 4);
  Alcotest.(check int) "accessors" 0x0F (Gpio.output g)

let test_syscon () =
  let s = Syscon.create () in
  let d = Syscon.device s ~base:0 in
  Alcotest.(check (option int)) "no exit yet" None (Syscon.exit_code s);
  d.Bus.dev_write 0 4 42;
  Alcotest.(check (option int)) "exit recorded" (Some 42) (Syscon.exit_code s);
  Syscon.reset s;
  Alcotest.(check (option int)) "reset" None (Syscon.exit_code s)

(* A full six-device platform on one bus, as Machine.create builds it. *)
let full_bus () =
  let bus = Bus.create () in
  let mem = Bus.ram bus in
  let wheel = Wheel.create () in
  let clint = Clint.create () in
  let now () = Clint.time clint in
  let notify _ _ = () in
  let dma = Dma.create ~mem ~wheel ~now ~notify () in
  let vnet = Vnet.create ~mem ~wheel ~now ~notify () in
  Bus.attach bus (Uart.device (Uart.create ()) ~base:Map.uart_base);
  Bus.attach bus (Clint.device clint ~base:Map.clint_base);
  Bus.attach bus (Gpio.device (Gpio.create ()) ~base:Map.gpio_base);
  Bus.attach bus (Syscon.device (Syscon.create ()) ~base:Map.syscon_base);
  Bus.attach bus (Dma.device dma ~base:Map.dma_base);
  Bus.attach bus (Vnet.device vnet ~base:Map.vnet_base);
  (bus, clint, wheel, dma, vnet)

let test_memory_map_disjoint () =
  (* attaching the full device plane must not overlap *)
  let bus, _, _, _, _ = full_bus () in
  Alcotest.(check int) "six devices" 6 (List.length (Bus.device_ranges bus));
  (* RAM base must not be claimed by any device *)
  List.iter
    (fun (_, base, len) ->
      Alcotest.(check bool) "below RAM" true (base + len <= Map.ram_base))
    (Bus.device_ranges bus)

let test_bus_overlap_rejected () =
  let bus, _, _, _, _ = full_bus () in
  List.iter
    (fun base ->
      match
        Bus.attach bus (Syscon.device (Syscon.create ()) ~base)
      with
      | () -> Alcotest.failf "overlap at 0x%08x accepted" base
      | exception Invalid_argument _ -> ())
    [ Map.uart_base; Map.dma_base; Map.vnet_base; Map.vnet_base + 0x80 ]

let test_bus_access_counts () =
  let bus, _, _, _, _ = full_bus () in
  (* TLB off: every access takes the routed slow path and is counted *)
  Bus.set_tlb_enabled bus false;
  ignore (Bus.read32 bus Map.vnet_base);
  ignore (Bus.read32 bus (Map.vnet_base + 0x40));
  Bus.write32 bus (Map.dma_base + 0x1C) 5;
  ignore (Bus.read8 bus Map.uart_base);
  let counts = Bus.access_counts bus in
  let count name = List.assoc name counts in
  Alcotest.(check int) "vnet" 2 (count "vnet");
  Alcotest.(check int) "dma" 1 (count "dma");
  Alcotest.(check int) "uart" 1 (count "uart");
  Alcotest.(check int) "gpio" 0 (count "gpio")

(* ---------------- event wheel ---------------- *)

let test_wheel_order () =
  let w = Wheel.create () in
  let fired = ref [] in
  let ev tag _now = fired := tag :: !fired in
  ignore (Wheel.schedule w ~at:50 (ev "b"));
  ignore (Wheel.schedule w ~at:10 (ev "a"));
  ignore (Wheel.schedule w ~at:50 (ev "c"));
  (* far beyond the near window *)
  ignore (Wheel.schedule w ~at:5000 (ev "e"));
  ignore (Wheel.schedule w ~at:900 (ev "d"));
  Alcotest.(check int) "next" 10 (Wheel.next_deadline w);
  Wheel.run_due w ~now:9;
  Alcotest.(check (list string)) "nothing early" [] !fired;
  Wheel.run_due w ~now:60;
  (* same-deadline events fire in schedule order *)
  Alcotest.(check (list string)) "near order" [ "c"; "b"; "a" ] !fired;
  Alcotest.(check int) "far next" 900 (Wheel.next_deadline w);
  Wheel.run_due w ~now:6000;
  Alcotest.(check (list string)) "all" [ "e"; "d"; "c"; "b"; "a" ] !fired;
  Alcotest.(check int) "idle" max_int (Wheel.next_deadline w);
  Alcotest.(check int) "none live" 0 (Wheel.pending w)

let test_wheel_cancel_and_stats () =
  let w = Wheel.create () in
  let hits = ref 0 in
  let id1 = Wheel.schedule w ~at:10 (fun _ -> incr hits) in
  let id2 = Wheel.schedule w ~at:20 (fun _ -> incr hits) in
  Wheel.cancel w id1;
  Alcotest.(check int) "next after cancel" 20 (Wheel.next_deadline w);
  Wheel.run_due w ~now:100;
  Wheel.cancel w id2 (* already fired: ignored *);
  Wheel.note_idle_skip w;
  let s = Wheel.stats w in
  Alcotest.(check int) "fired" 1 !hits;
  Alcotest.(check int) "ws_fired" 1 s.Wheel.ws_fired;
  Alcotest.(check int) "ws_scheduled" 2 s.Wheel.ws_scheduled;
  Alcotest.(check int) "ws_cancelled" 1 s.Wheel.ws_cancelled;
  Alcotest.(check int) "ws_idle_skips" 1 s.Wheel.ws_idle_skips;
  Alcotest.(check int) "ws_live" 0 s.Wheel.ws_live

let test_wheel_reschedule_from_callback () =
  let w = Wheel.create () in
  let fired = ref [] in
  ignore
    (Wheel.schedule w ~at:10 (fun now ->
         fired := ("first", now) :: !fired;
         (* at or before now: must fire within the same run_due *)
         ignore
           (Wheel.schedule w ~at:5 (fun now ->
                fired := ("chained", now) :: !fired))));
  Wheel.run_due w ~now:30;
  Alcotest.(check (list (pair string int)))
    "chained event fired at the consultation time"
    [ ("chained", 30); ("first", 30) ]
    !fired

let test_wheel_irq_lines () =
  let w = Wheel.create () in
  Alcotest.(check int) "clear" 0 (Wheel.irq_pending w);
  Wheel.set_irq w Dma.irq_line;
  Wheel.set_irq w Vnet.irq_line;
  Alcotest.(check int) "both" 0b11 (Wheel.irq_pending w);
  Wheel.clear_irq w Dma.irq_line;
  Alcotest.(check int) "vnet only" 0b10 (Wheel.irq_pending w);
  Wheel.clear w;
  Alcotest.(check int) "clear drops lines" 0 (Wheel.irq_pending w)

(* ---------------- DMA engine ---------------- *)

let ram = Map.ram_base

let write_desc mem base ~src ~dst ~len ~flags =
  Mem.write32 mem base src;
  Mem.write32 mem (base + 4) dst;
  Mem.write32 mem (base + 8) len;
  Mem.write32 mem (base + 12) flags

let test_dma_burst () =
  let bus, clint, wheel, dma, _ = full_bus () in
  let mem = Bus.ram bus in
  let d = Dma.device dma ~base:0 in
  (* 5000-byte source pattern crossing page boundaries *)
  for i = 0 to 4999 do
    Mem.write8 mem (ram + i) ((i * 7) land 0xFF)
  done;
  let ring = ram + 0x8000 and dst = ram + 0x10000 in
  write_desc mem ring ~src:ram ~dst ~len:5000 ~flags:Dma.flag_irq;
  d.Bus.dev_write 0x00 4 ring;
  d.Bus.dev_write 0x04 4 4;
  d.Bus.dev_write 0x14 4 1 (* IRQ_ENABLE *);
  d.Bus.dev_write 0x08 4 1 (* TAIL doorbell *);
  Alcotest.(check bool) "busy" true (Dma.busy dma);
  Alcotest.(check int) "deadline = cost" (Dma.cost 5000)
    (Wheel.next_deadline wheel);
  (* nothing moved yet *)
  Alcotest.(check int) "dst untouched" 0 (Mem.read8 mem dst);
  Clint.tick clint (Dma.cost 5000);
  Wheel.run_due wheel ~now:(Clint.time clint);
  Alcotest.(check bool) "idle" false (Dma.busy dma);
  Alcotest.(check int) "head" 1 (Dma.head dma);
  for i = 0 to 4999 do
    if Mem.read8 mem (dst + i) <> (i * 7) land 0xFF then
      Alcotest.failf "byte %d mismatch" i
  done;
  Alcotest.(check int) "tail byte clean" 0 (Mem.read8 mem (dst + 5000));
  Alcotest.(check int) "done flag"
    (Dma.flag_irq lor Dma.flag_done)
    (Mem.read32 mem (ring + 12));
  Alcotest.(check int) "irq status" 1 (d.Bus.dev_read 0x10 4);
  Alcotest.(check int) "line asserted" (1 lsl Dma.irq_line)
    (Wheel.irq_pending wheel);
  d.Bus.dev_write 0x10 4 1 (* W1C *);
  Alcotest.(check int) "line dropped" 0 (Wheel.irq_pending wheel);
  let s = Dma.stats dma in
  Alcotest.(check int) "bursts" 1 s.Dma.dma_bursts;
  Alcotest.(check int) "bytes" 5000 s.Dma.dma_bytes;
  Alcotest.(check int) "bytes reg" 5000 (d.Bus.dev_read 0x24 4)

let test_dma_chained_ring () =
  let bus, clint, wheel, dma, _ = full_bus () in
  let mem = Bus.ram bus in
  let d = Dma.device dma ~base:0 in
  Mem.write32 mem ram 0xDEAD;
  Mem.write32 mem (ram + 4) 0xBEEF;
  let ring = ram + 0x8000 in
  write_desc mem ring ~src:ram ~dst:(ram + 0x1000) ~len:4 ~flags:0;
  write_desc mem (ring + 16) ~src:(ram + 4) ~dst:(ram + 0x2000) ~len:4
    ~flags:0;
  d.Bus.dev_write 0x00 4 ring;
  d.Bus.dev_write 0x04 4 2;
  d.Bus.dev_write 0x08 4 2 (* both descriptors with one doorbell *);
  (* first completion arms the second; drive the wheel step by step *)
  Clint.tick clint (Dma.cost 4);
  Wheel.run_due wheel ~now:(Clint.time clint);
  Alcotest.(check int) "first copied" 0xDEAD (Mem.read32 mem (ram + 0x1000));
  Alcotest.(check int) "second pending" 0 (Mem.read32 mem (ram + 0x2000));
  Alcotest.(check bool) "still busy" true (Dma.busy dma);
  Clint.tick clint (Dma.cost 4);
  Wheel.run_due wheel ~now:(Clint.time clint);
  Alcotest.(check int) "second copied" 0xBEEF (Mem.read32 mem (ram + 0x2000));
  Alcotest.(check int) "head wrapped" 2 (Dma.head dma);
  Alcotest.(check bool) "no irq requested" true (Dma.irq_status dma = 0)

let test_dma_burst_len_clamped () =
  (* a corrupted (e.g. bit-flipped) descriptor length must be clamped:
     one completion event may not do gigabytes of host-side work *)
  let bus, clint, wheel, dma, _ = full_bus () in
  let mem = Bus.ram bus in
  let d = Dma.device dma ~base:0 in
  let ring = ram + 0x8000 in
  write_desc mem ring ~src:ram ~dst:(ram + 0x10_0000) ~len:0x4000_0040
    ~flags:0;
  d.Bus.dev_write 0x00 4 ring;
  d.Bus.dev_write 0x04 4 1;
  d.Bus.dev_write 0x08 4 1;
  Alcotest.(check int) "deadline uses the clamped cost"
    (Dma.cost Dma.max_burst_len)
    (Wheel.next_deadline wheel);
  Clint.tick clint (Dma.cost Dma.max_burst_len);
  Wheel.run_due wheel ~now:(Clint.time clint);
  Alcotest.(check bool) "completed" false (Dma.busy dma);
  let s = Dma.stats dma in
  Alcotest.(check int) "bytes clamped" Dma.max_burst_len s.Dma.dma_bytes

let test_dma_notify_range () =
  (* DMA-written ranges must be reported for TB invalidation *)
  let ranges = ref [] in
  let mem = Mem.create () in
  let wheel = Wheel.create () in
  let t = ref 0 in
  let dma =
    Dma.create ~mem ~wheel ~now:(fun () -> !t)
      ~notify:(fun a l -> ranges := (a, l) :: !ranges)
      ()
  in
  let d = Dma.device dma ~base:0 in
  let ring = ram + 0x100 in
  write_desc mem ring ~src:ram ~dst:(ram + 0x40) ~len:8 ~flags:0;
  d.Bus.dev_write 0x00 4 ring;
  d.Bus.dev_write 0x04 4 1;
  d.Bus.dev_write 0x08 4 1;
  t := Dma.cost 8;
  Wheel.run_due wheel ~now:!t;
  (* the payload range and the written-back status word *)
  Alcotest.(check bool) "payload notified" true
    (List.mem (ram + 0x40, 8) !ranges);
  Alcotest.(check bool) "status word notified" true
    (List.mem (ring + 12, 4) !ranges)

(* ---------------- vnet ---------------- *)

let test_vnet_stream_pure () =
  (* the payload stream is a pure function of (seed, index) *)
  let a = List.init 64 (Vnet.stream_byte 7) in
  let b = List.init 64 (Vnet.stream_byte 7) in
  let c = List.init 64 (Vnet.stream_byte 8) in
  Alcotest.(check (list int)) "deterministic" a b;
  Alcotest.(check bool) "seed matters" true (a <> c);
  List.iter
    (fun v -> Alcotest.(check bool) "byte range" true (v >= 0 && v < 256))
    a

let test_vnet_rx_deliver_and_drop () =
  let bus, clint, wheel, _, vnet = full_bus () in
  let mem = Bus.ram bus in
  let d = Vnet.device vnet ~base:0 in
  let ring = ram + 0x8000 and buf = ram + 0x9000 in
  write_desc mem ring ~src:buf ~dst:0 ~len:64 ~flags:0;
  (* one posted buffer, three packets: 1 delivered, 2 dropped *)
  d.Bus.dev_write 0x00 4 1 (* CTRL enable *);
  d.Bus.dev_write 0x0C 4 ring;
  d.Bus.dev_write 0x10 4 8 (* RX_COUNT *);
  d.Bus.dev_write 0x14 4 1 (* RX_TAIL: one buffer *);
  d.Bus.dev_write 0x08 4 Vnet.irq_rx;
  d.Bus.dev_write 0x2C 4 42 (* seed *);
  d.Bus.dev_write 0x30 4 10 (* rate *);
  d.Bus.dev_write 0x34 4 3 (* burst *);
  d.Bus.dev_write 0x38 4 48 (* gen len *);
  d.Bus.dev_write 0x3C 4 3 (* arm 3 packets *);
  Alcotest.(check int) "gen deadline" 10 (Wheel.next_deadline wheel);
  Clint.tick clint 10;
  Wheel.run_due wheel ~now:10;
  let st = Vnet.stats vnet in
  Alcotest.(check int) "delivered" 1 st.Vnet.vn_rx_delivered;
  Alcotest.(check int) "dropped" 2 st.Vnet.vn_rx_dropped;
  Alcotest.(check int) "head advanced" 1 (d.Bus.dev_read 0x18 4);
  (* status word: min(gen_len, buf_len) with the done flag *)
  Alcotest.(check int) "rx status" (48 lor Dma.flag_done)
    (Mem.read32 mem (ring + 12));
  (* payload bytes of packet 0 *)
  for j = 0 to 47 do
    if Mem.read8 mem (buf + j) <> Vnet.stream_byte 42 j then
      Alcotest.failf "payload byte %d mismatch" j
  done;
  Alcotest.(check int) "rx irq" Vnet.irq_rx (d.Bus.dev_read 0x04 4);
  Alcotest.(check int) "line" (1 lsl Vnet.irq_line)
    (Wheel.irq_pending wheel);
  Alcotest.(check bool) "generator exhausted" false (Vnet.gen_active vnet)

let test_vnet_pio_stream () =
  let _, _, _, _, vnet = full_bus () in
  let d = Vnet.device vnet ~base:0 in
  d.Bus.dev_write 0x2C 4 9 (* seed *);
  for i = 0 to 99 do
    Alcotest.(check int)
      (Printf.sprintf "pio byte %d" i)
      (Vnet.stream_byte 9 i)
      (d.Bus.dev_read 0x50 4)
  done

let test_vnet_tx_checksum () =
  let bus, clint, wheel, _, vnet = full_bus () in
  let mem = Bus.ram bus in
  let d = Vnet.device vnet ~base:0 in
  let ring = ram + 0x8000 and buf = ram + 0x9000 in
  let payload = "device plane tx checksum" in
  String.iteri
    (fun i c -> Mem.write8 mem (buf + i) (Char.code c))
    payload;
  let len = String.length payload in
  write_desc mem ring ~src:buf ~dst:0 ~len ~flags:0;
  d.Bus.dev_write 0x00 4 1 (* CTRL enable *);
  d.Bus.dev_write 0x1C 4 ring;
  d.Bus.dev_write 0x20 4 4 (* TX_COUNT *);
  d.Bus.dev_write 0x24 4 1 (* TX_TAIL doorbell *);
  Clint.tick clint (Dma.cost len);
  Wheel.run_due wheel ~now:(Clint.time clint);
  (* reference FNV-1a over the payload *)
  let expect =
    String.fold_left
      (fun h c ->
        ((h lxor Char.code c) * 0x0100_0193) land 0xFFFF_FFFF)
      0x811C_9DC5 payload
  in
  Alcotest.(check int) "fnv-1a" expect (d.Bus.dev_read 0x4C 4);
  Alcotest.(check int) "sent" 1 (d.Bus.dev_read 0x48 4);
  Alcotest.(check int) "done flag" Dma.flag_done
    (Mem.read32 mem (ring + 12))

(* ---------------- uart host sink ---------------- *)

let test_uart_sink_batching () =
  let u = Uart.create () in
  let d = Uart.device u ~base:0 in
  let chunks = ref [] in
  Uart.set_sink u (Some (fun s -> chunks := s :: !chunks));
  let put c = d.Bus.dev_write Uart.data_offset 1 (Char.code c) in
  String.iter put "partial";
  Alcotest.(check (list string)) "buffered, not flushed" [] !chunks;
  put '\n';
  Alcotest.(check (list string)) "newline flushes" [ "partial\n" ] !chunks;
  String.iter put "tail";
  Uart.flush_host u;
  Alcotest.(check (list string)) "explicit flush" [ "tail"; "partial\n" ]
    !chunks;
  Uart.flush_host u;
  Alcotest.(check (list string)) "no empty chunks" [ "tail"; "partial\n" ]
    !chunks;
  (* the accumulated output view is unaffected by sink batching *)
  Alcotest.(check string) "full output" "partial\ntail" (Uart.output u)

let test_uart_sink_threshold () =
  let u = Uart.create () in
  let d = Uart.device u ~base:0 in
  let chunks = ref [] in
  Uart.set_sink u (Some (fun s -> chunks := s :: !chunks));
  for _ = 1 to 256 do
    d.Bus.dev_write Uart.data_offset 1 (Char.code 'x')
  done;
  Alcotest.(check int) "threshold flush" 1 (List.length !chunks);
  Alcotest.(check int) "256 bytes" 256 (String.length (List.hd !chunks))

(* ---------------- multi-hart CLINT ---------------- *)

let test_clint_multihart () =
  let c = Clint.create ~harts:2 () in
  let d = Clint.device c ~base:0 in
  (* msip registers are 4 bytes apart, one per hart *)
  d.Bus.dev_write 4 4 1;
  Alcotest.(check bool) "msip hart1 set" true (Clint.software_pending ~hart:1 c);
  Alcotest.(check bool) "msip hart0 clear" false (Clint.software_pending c);
  Alcotest.(check int) "msip hart1 reads back" 1 (d.Bus.dev_read 4 4);
  (* mtimecmp pairs are 8 bytes apart from 0x4000 *)
  d.Bus.dev_write 0x4008 4 500;
  d.Bus.dev_write 0x400C 4 0;
  Alcotest.(check int) "timecmp hart1" 500 (Clint.timecmp ~hart:1 c);
  Alcotest.(check bool) "timecmp hart0 untouched" true
    (Clint.timecmp c = max_int);
  Clint.tick c 600;
  Alcotest.(check bool) "timer hart1 pending" true
    (Clint.timer_pending ~hart:1 c);
  Alcotest.(check bool) "timer hart0 idle" false (Clint.timer_pending c);
  Alcotest.(check int) "next_timecmp is the minimum" 500 (Clint.next_timecmp c)

(* ---------------- PLIC ---------------- *)

module Plic = S4e_soc.Plic

let test_plic_routing () =
  let lines = ref 0 in
  let p = Plic.create ~harts:2 () in
  Plic.set_line_source p (fun () -> !lines);
  Alcotest.(check bool) "inactive until written" false (Plic.active p);
  Alcotest.(check bool) "not routed" false (Plic.routed p);
  let d = Plic.device p ~base:0 in
  (* wheel line 0 = source 1: priority 3, enabled for hart 1 only *)
  d.Bus.dev_write 0x4 4 3;
  d.Bus.dev_write (0x2000 + 0x80) 4 0x2;
  Alcotest.(check bool) "routed once enabled" true (Plic.routed p);
  Alcotest.(check bool) "active once written" true (Plic.active p);
  Alcotest.(check bool) "no line, no meip" false (Plic.meip p 1);
  lines := 1;
  Alcotest.(check bool) "meip hart1" true (Plic.meip p 1);
  Alcotest.(check bool) "hart0 not enabled" false (Plic.meip p 0);
  Alcotest.(check int) "pending register" 0x2 (d.Bus.dev_read 0x1000 4)

let test_plic_claim_complete () =
  let lines = ref 0 in
  let p = Plic.create () in
  Plic.set_line_source p (fun () -> !lines);
  let d = Plic.device p ~base:0 in
  d.Bus.dev_write 0x4 4 1;
  d.Bus.dev_write 0x8 4 2;
  d.Bus.dev_write 0x2000 4 0x6;
  lines := 0b11;
  (* highest priority claimed first; claimed sources stop asserting *)
  Alcotest.(check int) "claim highest" 2 (d.Bus.dev_read 0x200004 4);
  Alcotest.(check bool) "source 1 still pends" true (Plic.meip p 0);
  Alcotest.(check int) "claim next" 1 (d.Bus.dev_read 0x200004 4);
  Alcotest.(check bool) "all claimed" false (Plic.meip p 0);
  Alcotest.(check int) "claim when empty" 0 (d.Bus.dev_read 0x200004 4);
  (* completion re-arms the level-triggered line *)
  d.Bus.dev_write 0x200004 4 2;
  d.Bus.dev_write 0x200004 4 1;
  Alcotest.(check bool) "meip after complete" true (Plic.meip p 0)

let test_plic_threshold () =
  let p = Plic.create () in
  Plic.set_line_source p (fun () -> 1);
  let d = Plic.device p ~base:0 in
  d.Bus.dev_write 0x4 4 2;
  d.Bus.dev_write 0x2000 4 0x2;
  Alcotest.(check bool) "above threshold 0" true (Plic.meip p 0);
  d.Bus.dev_write 0x200000 4 2;
  Alcotest.(check bool) "masked at threshold = priority" false (Plic.meip p 0);
  d.Bus.dev_write 0x200000 4 1;
  Alcotest.(check bool) "visible again" true (Plic.meip p 0)

let test_plic_snapshot () =
  let p = Plic.create ~harts:2 () in
  Plic.set_line_source p (fun () -> 1);
  let d = Plic.device p ~base:0 in
  d.Bus.dev_write 0x4 4 3;
  d.Bus.dev_write 0x2000 4 0x2;
  let claimed = d.Bus.dev_read 0x200004 4 in
  Alcotest.(check int) "claimed source 1" 1 claimed;
  let s = Plic.snapshot p in
  let dg = Plic.digest p in
  d.Bus.dev_write 0x200004 4 1;
  d.Bus.dev_write 0x200000 4 5;
  Alcotest.(check bool) "digest moved" true (Plic.digest p <> dg);
  Plic.restore p s;
  Alcotest.(check string) "digest restored" dg (Plic.digest p);
  Alcotest.(check bool) "claim still in flight" false (Plic.meip p 0);
  Plic.reset p;
  Alcotest.(check bool) "reset deactivates" false (Plic.active p)

let () =
  Alcotest.run "soc"
    [ ( "devices",
        [ Alcotest.test_case "uart tx" `Quick test_uart_tx;
          Alcotest.test_case "uart tx callback" `Quick test_uart_tx_callback;
          Alcotest.test_case "uart rx" `Quick test_uart_rx;
          Alcotest.test_case "clint timer" `Quick test_clint_timer;
          Alcotest.test_case "clint registers" `Quick test_clint_registers;
          Alcotest.test_case "clint multi-hart" `Quick test_clint_multihart;
          Alcotest.test_case "gpio" `Quick test_gpio;
          Alcotest.test_case "syscon" `Quick test_syscon;
          Alcotest.test_case "memory map disjoint" `Quick
            test_memory_map_disjoint;
          Alcotest.test_case "bus overlap rejected" `Quick
            test_bus_overlap_rejected;
          Alcotest.test_case "bus access counts" `Quick
            test_bus_access_counts;
          Alcotest.test_case "uart sink batching" `Quick
            test_uart_sink_batching;
          Alcotest.test_case "uart sink threshold" `Quick
            test_uart_sink_threshold ] );
      ( "event wheel",
        [ Alcotest.test_case "fire order" `Quick test_wheel_order;
          Alcotest.test_case "cancel and stats" `Quick
            test_wheel_cancel_and_stats;
          Alcotest.test_case "reschedule from callback" `Quick
            test_wheel_reschedule_from_callback;
          Alcotest.test_case "irq lines" `Quick test_wheel_irq_lines ] );
      ( "dma",
        [ Alcotest.test_case "burst copy" `Quick test_dma_burst;
          Alcotest.test_case "chained ring" `Quick test_dma_chained_ring;
          Alcotest.test_case "burst length clamped" `Quick
            test_dma_burst_len_clamped;
          Alcotest.test_case "notify range" `Quick test_dma_notify_range ] );
      ( "plic",
        [ Alcotest.test_case "routing" `Quick test_plic_routing;
          Alcotest.test_case "claim/complete" `Quick test_plic_claim_complete;
          Alcotest.test_case "threshold" `Quick test_plic_threshold;
          Alcotest.test_case "snapshot/restore/reset" `Quick
            test_plic_snapshot ] );
      ( "vnet",
        [ Alcotest.test_case "stream pure" `Quick test_vnet_stream_pure;
          Alcotest.test_case "rx deliver and drop" `Quick
            test_vnet_rx_deliver_and_drop;
          Alcotest.test_case "pio stream" `Quick test_vnet_pio_stream;
          Alcotest.test_case "tx checksum" `Quick test_vnet_tx_checksum ] ) ]
