(* Sparse memory and bus tests. *)

module Mem = S4e_mem.Sparse_mem
module Bus = S4e_mem.Bus

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:300 gen f)

let addr_gen = QCheck.map (fun i -> i land 0xFFFF_FFFF) QCheck.int

let test_rw_basic () =
  let m = Mem.create () in
  Alcotest.(check int) "untouched reads zero" 0 (Mem.read32 m 0x8000_0000);
  Mem.write32 m 0x8000_0000 0xDEADBEEF;
  Alcotest.(check int) "read32" 0xDEADBEEF (Mem.read32 m 0x8000_0000);
  Alcotest.(check int) "read16 low" 0xBEEF (Mem.read16 m 0x8000_0000);
  Alcotest.(check int) "read16 high" 0xDEAD (Mem.read16 m 0x8000_0002);
  Alcotest.(check int) "read8" 0xEF (Mem.read8 m 0x8000_0000);
  Alcotest.(check int) "read8 top" 0xDE (Mem.read8 m 0x8000_0003)

let test_page_crossing () =
  let m = Mem.create () in
  let edge = 0x8000_0000 + Mem.page_size - 2 in
  Mem.write32 m edge 0x11223344;
  Alcotest.(check int) "cross-page read32" 0x11223344 (Mem.read32 m edge);
  Alcotest.(check int) "upper half next page" 0x1122 (Mem.read16 m (edge + 2));
  Mem.write16 m (0x8000_0000 + Mem.page_size - 1) 0xAABB;
  Alcotest.(check int) "cross-page read16" 0xAABB
    (Mem.read16 m (0x8000_0000 + Mem.page_size - 1))

let test_bulk () =
  let m = Mem.create () in
  Mem.load_bytes m 0x1000 "hello world";
  Alcotest.(check string) "dump" "hello world" (Mem.dump_bytes m 0x1000 11);
  Alcotest.(check int) "byte of string" (Char.code 'w') (Mem.read8 m 0x1006)

let test_copy_isolation () =
  let m = Mem.create () in
  Mem.write32 m 0x100 42;
  let c = Mem.copy m in
  Mem.write32 m 0x100 7;
  Alcotest.(check int) "copy unaffected" 42 (Mem.read32 c 0x100);
  Alcotest.(check int) "original updated" 7 (Mem.read32 m 0x100)

let test_clear () =
  let m = Mem.create () in
  Mem.write32 m 0x100 1;
  Alcotest.(check bool) "touched" true (Mem.touched_pages m > 0);
  Mem.clear m;
  Alcotest.(check int) "cleared" 0 (Mem.touched_pages m);
  Alcotest.(check int) "reads zero" 0 (Mem.read32 m 0x100)

(* ---------------- bus ---------------- *)

let dummy_device name base =
  let stored = ref 0 in
  ( { Bus.dev_name = name; dev_base = base; dev_len = 0x10;
      dev_read = (fun _ _ -> !stored);
      dev_write = (fun _ _ v -> stored := v) },
    stored )

let test_bus_routing () =
  let bus = Bus.create () in
  let dev, stored = dummy_device "dev" 0x4000 in
  Bus.attach bus dev;
  Bus.write32 bus 0x4000 99;
  Alcotest.(check int) "device write" 99 !stored;
  Alcotest.(check int) "device read" 99 (Bus.read32 bus 0x4004);
  Bus.write32 bus 0x8000 123;
  Alcotest.(check int) "ram fallthrough" 123 (Bus.read32 bus 0x8000);
  Alcotest.(check int) "ram direct" 123 (Mem.read32 (Bus.ram bus) 0x8000)

let test_bus_overlap_rejected () =
  let bus = Bus.create () in
  let d1, _ = dummy_device "one" 0x4000 in
  let d2, _ = dummy_device "two" 0x4008 in
  Bus.attach bus d1;
  Alcotest.check_raises "overlap"
    (Invalid_argument "Bus.attach: two overlaps one") (fun () ->
      Bus.attach bus d2)

let test_bus_watcher () =
  let bus = Bus.create () in
  let dev, _ = dummy_device "dev" 0x4000 in
  Bus.attach bus dev;
  let seen = ref [] in
  Bus.set_io_watcher bus (Some (fun a -> seen := a :: !seen));
  Bus.write8 bus 0x4002 0xAB;
  let _ = Bus.read16 bus 0x4000 in
  (* RAM traffic must not reach the IO watcher *)
  Bus.write32 bus 0x9000 1;
  Alcotest.(check int) "two device events" 2 (List.length !seen);
  (match !seen with
  | [ rd; wr ] ->
      Alcotest.(check bool) "write flag" true wr.Bus.io_is_write;
      Alcotest.(check bool) "read flag" false rd.Bus.io_is_write;
      Alcotest.(check string) "device name" "dev" wr.Bus.io_device;
      Alcotest.(check int) "address" 0x4002 wr.Bus.io_addr
  | _ -> Alcotest.fail "expected exactly two accesses");
  Bus.set_io_watcher bus None;
  Bus.write8 bus 0x4002 1;
  Alcotest.(check int) "watcher removed" 2 (List.length !seen)

let test_fetch_bypasses_devices () =
  let bus = Bus.create () in
  let dev, _ = dummy_device "dev" 0x4000 in
  Bus.attach bus dev;
  Bus.write32 bus 0x4000 77;
  (* fetch reads RAM underneath the device, which is still zero *)
  Alcotest.(check int) "fetch32 bypass" 0 (Bus.fetch32 bus 0x4000)

let test_invalid_size () =
  let bus = Bus.create () in
  Alcotest.check_raises "read size"
    (Invalid_argument "Bus.read: size must be 1, 2 or 4") (fun () ->
      ignore (Bus.read bus 0 3));
  Alcotest.check_raises "write size"
    (Invalid_argument "Bus.write: size must be 1, 2 or 4") (fun () ->
      Bus.write bus 0 3 0)

let test_find_device_sorted () =
  (* Attach in unsorted base order; the binary search must route every
     boundary of every device correctly. *)
  let bus = Bus.create () in
  let bases = [ 0x9000; 0x2000; 0x6000; 0x4000; 0x8000 ] in
  let devs = List.map (fun b -> (b, dummy_device (Printf.sprintf "d%x" b) b)) bases in
  List.iter (fun (_, (d, _)) -> Bus.attach bus d) devs;
  List.iter
    (fun (base, (_, stored)) ->
      stored := base lor 1;
      Alcotest.(check int) "first byte routes" (base lor 1) (Bus.read32 bus base);
      Alcotest.(check int) "last byte routes" (base lor 1)
        (Bus.read8 bus (base + 0xF));
      (* one past the end is RAM, reads as zero *)
      Alcotest.(check int) "past end is ram" 0 (Bus.read8 bus (base + 0x10));
      Alcotest.(check int) "before start is ram" 0 (Bus.read8 bus (base - 1)))
    devs

(* ---------------- software TLB ---------------- *)

let test_tlb_hit_miss_counting () =
  let bus = Bus.create () in
  Bus.write32 bus 0x8000_0000 7;
  let s1 = Bus.tlb_stats bus in
  Alcotest.(check int) "first write misses" 0 s1.Bus.tlb_hits;
  Bus.write32 bus 0x8000_0004 8;
  ignore (Bus.read32 bus 0x8000_0000);
  let s2 = Bus.tlb_stats bus in
  Alcotest.(check bool) "warm accesses hit" true (s2.Bus.tlb_hits >= 2);
  Bus.tlb_flush bus;
  let f = (Bus.tlb_stats bus).Bus.tlb_flushes in
  ignore (Bus.read32 bus 0x8000_0000);
  let s3 = Bus.tlb_stats bus in
  Alcotest.(check int) "flush counted" f s3.Bus.tlb_flushes;
  Alcotest.(check bool) "post-flush access misses" true
    (s3.Bus.tlb_misses > s2.Bus.tlb_misses)

let test_tlb_disabled_never_hits () =
  let bus = Bus.create () in
  Bus.set_tlb_enabled bus false;
  Alcotest.(check bool) "reports disabled" false (Bus.tlb_enabled bus);
  Bus.write32 bus 0x8000_0000 7;
  ignore (Bus.read32 bus 0x8000_0000);
  ignore (Bus.read32 bus 0x8000_0000);
  Alcotest.(check int) "no hits" 0 (Bus.tlb_stats bus).Bus.tlb_hits

let test_tlb_read_never_allocates () =
  (* Read traffic must not materialise pages: [Sparse_mem.digest]
     distinguishes absent from all-zero pages, and campaign convergence
     checks compare digests of machines with different read histories. *)
  let bus = Bus.create () in
  let d0 = Mem.digest (Bus.ram bus) in
  for i = 0 to 99 do
    ignore (Bus.read32 bus (0x8000_0000 + (i * 4)));
    ignore (Bus.read32 bus (0x8000_0000 + (i * 4)))
  done;
  Alcotest.(check int) "no pages allocated" 0 (Mem.touched_pages (Bus.ram bus));
  Alcotest.(check string) "digest unchanged" d0 (Mem.digest (Bus.ram bus))

let test_tlb_attach_invalidates () =
  (* Warm the TLB on a page, then attach a device covering it: cached
     page pointers must not let accesses bypass the new device. *)
  let bus = Bus.create () in
  Bus.write32 bus 0x4000 123;
  Alcotest.(check int) "warm read" 123 (Bus.read32 bus 0x4000);
  let dev, stored = dummy_device "late" 0x4000 in
  Bus.attach bus dev;
  stored := 777;
  Alcotest.(check int) "read routes to late device" 777 (Bus.read32 bus 0x4000);
  Bus.write32 bus 0x4000 555;
  Alcotest.(check int) "write routes to late device" 555 !stored;
  Alcotest.(check int) "ram under device untouched" 123
    (Mem.read32 (Bus.ram bus) 0x4000)

let test_tlb_watcher_blocks_caching () =
  (* While an IO watcher is installed nothing may be cached; installing
     one must also drop existing entries. *)
  let bus = Bus.create () in
  Bus.write32 bus 0x8000_0000 1;
  ignore (Bus.read32 bus 0x8000_0000);
  Bus.set_io_watcher bus (Some (fun _ -> ()));
  let s1 = Bus.tlb_stats bus in
  ignore (Bus.read32 bus 0x8000_0000);
  ignore (Bus.read32 bus 0x8000_0000);
  let s2 = Bus.tlb_stats bus in
  Alcotest.(check int) "no hits while watched" s1.Bus.tlb_hits s2.Bus.tlb_hits;
  Bus.set_io_watcher bus None;
  ignore (Bus.read32 bus 0x8000_0000);
  ignore (Bus.read32 bus 0x8000_0000);
  let s3 = Bus.tlb_stats bus in
  Alcotest.(check bool) "hits resume after detach" true
    (s3.Bus.tlb_hits > s2.Bus.tlb_hits)

let test_tlb_restore_invalidates () =
  (* Snapshot restore swaps page contents (and possibly buffers) behind
     the bus; the change hook must flush cached pointers. *)
  let bus = Bus.create () in
  Bus.write32 bus 0x8000_0000 1;
  let snap = Mem.snapshot (Bus.ram bus) in
  Bus.write32 bus 0x8000_0000 2;
  Bus.write32 bus 0x9000_0000 3;
  ignore (Bus.read32 bus 0x9000_0000);
  Mem.restore (Bus.ram bus) snap;
  Alcotest.(check int) "restored value visible" 1 (Bus.read32 bus 0x8000_0000);
  Alcotest.(check int) "post-snapshot page gone" 0 (Bus.read32 bus 0x9000_0000);
  Alcotest.(check int) "page count rewound" 1 (Mem.touched_pages (Bus.ram bus))

(* Differential: a TLB-on bus and a TLB-off bus fed the same operation
   stream must return the same values and end with digest-identical RAM.
   Addresses mix page boundaries, the device window, its surrounding
   page, and the 32-bit wrap. *)
let tlb_ops_gen =
  let open QCheck.Gen in
  let addr =
    frequency
      [ (2, oneofl
             [ 0x0; 0xFFE; 0xFFF; 0x3FFC; 0x4000; 0x4008; 0x400F; 0x4010;
               0x4FFF; 0x8000_0FFE; 0x8000_0FFF; 0xFFFF_FFFE; 0xFFFF_FFFF ]);
        (4, map (fun i -> 0x8000_0000 lor (i land 0x3FFF)) int);
        (1, map (fun i -> i land 0xFFFF_FFFF) int) ]
  in
  let op = triple (int_bound 5) addr (map (fun i -> i land 0xFFFF_FFFF) int) in
  list_size (int_range 1 120) op

let tlb_ops_print ops =
  String.concat ";"
    (List.map (fun (k, a, v) -> Printf.sprintf "(%d,0x%x,0x%x)" k a v) ops)

let size_of_kind k = match k mod 3 with 0 -> 1 | 1 -> 2 | _ -> 4

let run_ops bus ops =
  List.map
    (fun (k, a, v) ->
      let size = size_of_kind k in
      if k < 3 then Bus.read bus a size
      else begin
        Bus.write bus a size v;
        0
      end)
    ops

let tlb_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"bus: TLB on/off differential" ~count:300
       (QCheck.make ~print:tlb_ops_print tlb_ops_gen)
       (fun ops ->
         let mk on =
           let bus = Bus.create () in
           Bus.set_tlb_enabled bus on;
           let dev, stored = dummy_device "dev" 0x4000 in
           Bus.attach bus dev;
           (bus, stored)
         in
         let bus_on, st_on = mk true in
         let bus_off, st_off = mk false in
         let r_on = run_ops bus_on ops in
         let r_off = run_ops bus_off ops in
         r_on = r_off && !st_on = !st_off
         && Mem.digest (Bus.ram bus_on) = Mem.digest (Bus.ram bus_off)))

(* ---------------- sparse memory vs. byte-at-a-time model ---------------- *)

(* Reference model: a plain [addr -> byte] table.  Every multi-byte
   access of the real memory must equal composing byte accesses at
   [(addr + i) land 0xFFFF_FFFF] — including across page boundaries and
   the 32-bit wrap at 0xFFFF_FFFE. *)
let ref_read8 tbl a =
  match Hashtbl.find_opt tbl (a land 0xFFFF_FFFF) with
  | Some b -> b
  | None -> 0

let ref_write8 tbl a v = Hashtbl.replace tbl (a land 0xFFFF_FFFF) (v land 0xFF)

let ref_read tbl a size =
  let r = ref 0 in
  for i = size - 1 downto 0 do
    r := (!r lsl 8) lor ref_read8 tbl (a + i)
  done;
  !r

let ref_write tbl a size v =
  for i = 0 to size - 1 do
    ref_write8 tbl (a + i) ((v lsr (8 * i)) land 0xFF)
  done

let sparse_model_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"sparse: matches byte-at-a-time model" ~count:300
       (QCheck.make ~print:tlb_ops_print tlb_ops_gen)
       (fun ops ->
         let m = Mem.create () in
         let tbl = Hashtbl.create 64 in
         List.for_all
           (fun (k, a, v) ->
             let size = size_of_kind k in
             if k < 3 then begin
               let got =
                 match size with
                 | 1 -> Mem.read8 m a
                 | 2 -> Mem.read16 m a
                 | _ -> Mem.read32 m a
               in
               got = ref_read tbl a size
             end
             else begin
               (match size with
               | 1 -> Mem.write8 m a v
               | 2 -> Mem.write16 m a v
               | _ -> Mem.write32 m a v);
               ref_write tbl a size v;
               true
             end)
           ops))

let props =
  [ prop "read32 after write32 roundtrips"
      (QCheck.pair addr_gen Gen.word32)
      (fun (a, v) ->
        let m = Mem.create () in
        Mem.write32 m a v;
        Mem.read32 m a = v);
    prop "byte decomposition of words" (QCheck.pair addr_gen Gen.word32)
      (fun (a, v) ->
        let m = Mem.create () in
        Mem.write32 m a v;
        Mem.read8 m a = v land 0xFF
        && Mem.read8 m (a + 1) = (v lsr 8) land 0xFF
        && Mem.read8 m (a + 2) = (v lsr 16) land 0xFF
        && Mem.read8 m (a + 3) = (v lsr 24) land 0xFF);
    prop "little-endian halves" (QCheck.pair addr_gen Gen.word32)
      (fun (a, v) ->
        let m = Mem.create () in
        Mem.write32 m a v;
        Mem.read16 m a lor (Mem.read16 m (a + 2) lsl 16) = v);
    prop "load/dump roundtrip" (QCheck.pair addr_gen QCheck.string)
      (fun (a, s) ->
        QCheck.assume (a + String.length s < 0xFFFF_FFFF);
        let m = Mem.create () in
        Mem.load_bytes m a s;
        Mem.dump_bytes m a (String.length s) = s) ]

let () =
  Alcotest.run "mem"
    [ ( "sparse",
        [ Alcotest.test_case "rw basic" `Quick test_rw_basic;
          Alcotest.test_case "page crossing" `Quick test_page_crossing;
          Alcotest.test_case "bulk" `Quick test_bulk;
          Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
          Alcotest.test_case "clear" `Quick test_clear ] );
      ( "bus",
        [ Alcotest.test_case "routing" `Quick test_bus_routing;
          Alcotest.test_case "overlap rejected" `Quick test_bus_overlap_rejected;
          Alcotest.test_case "watcher" `Quick test_bus_watcher;
          Alcotest.test_case "fetch bypasses devices" `Quick
            test_fetch_bypasses_devices;
          Alcotest.test_case "invalid size" `Quick test_invalid_size;
          Alcotest.test_case "find_device binary search" `Quick
            test_find_device_sorted ] );
      ( "tlb",
        [ Alcotest.test_case "hit/miss/flush counting" `Quick
            test_tlb_hit_miss_counting;
          Alcotest.test_case "disabled never hits" `Quick
            test_tlb_disabled_never_hits;
          Alcotest.test_case "reads never allocate pages" `Quick
            test_tlb_read_never_allocates;
          Alcotest.test_case "device attach invalidates" `Quick
            test_tlb_attach_invalidates;
          Alcotest.test_case "io watcher blocks caching" `Quick
            test_tlb_watcher_blocks_caching;
          Alcotest.test_case "snapshot restore invalidates" `Quick
            test_tlb_restore_invalidates;
          tlb_differential ] );
      ("properties", sparse_model_differential :: props) ]
