(* Worker-pool tests: order preservation, determinism across jobs,
   chunking, and exception propagation. *)

module Pool = S4e_par.Par_pool

let prop ?(count = 30) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let test_map_preserves_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "same as List.map" (List.map succ xs)
        (Pool.map_chunked pool succ xs))

let test_map_empty_and_singleton () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map_chunked pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ]
        (Pool.map_chunked pool succ [ 7 ]))

let test_jobs_clamped () =
  Pool.with_pool ~jobs:0 (fun pool ->
      Alcotest.(check int) "jobs >= 1" 1 (Pool.jobs pool);
      Alcotest.(check (list int)) "still maps" [ 2; 3 ]
        (Pool.map_chunked pool succ [ 1; 2 ]))

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let boom x = if x = 37 then failwith "boom" else x in
      Alcotest.check_raises "first exception re-raised" (Failure "boom")
        (fun () -> ignore (Pool.map_chunked pool boom (List.init 100 Fun.id)));
      (* the pool survives a failed map *)
      Alcotest.(check (list int)) "usable afterwards" [ 1; 2; 3 ]
        (Pool.map_chunked pool succ [ 0; 1; 2 ]))

let test_fail_fast () =
  (* One poisoned element at the front; every other element sleeps.  If
     pullers kept pulling chunks after the failure, (almost) all 400
     elements would execute; fail-fast means the executed count stays
     far below that. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let executed = Atomic.make 0 in
      let work x =
        if x = 0 then failwith "boom"
        else begin
          Unix.sleepf 0.001;
          ignore (Atomic.fetch_and_add executed 1);
          x
        end
      in
      Alcotest.check_raises "first exception re-raised" (Failure "boom")
        (fun () ->
          ignore (Pool.map_chunked ~chunk:1 pool work (List.init 400 Fun.id)));
      Alcotest.(check bool)
        (Printf.sprintf "stopped early (executed %d)" (Atomic.get executed))
        true
        (Atomic.get executed < 100))

let test_map_chunked_result () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let work x = if x mod 10 = 3 then failwith (string_of_int x) else x * 2 in
      let rs = Pool.map_chunked_result ~chunk:3 pool work (List.init 50 Fun.id) in
      Alcotest.(check int) "one result per input" 50 (List.length rs);
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) "ok value" (i * 2) v
          | Error (Failure m) ->
              Alcotest.(check string) "error keeps the exception"
                (string_of_int i) m;
              Alcotest.(check bool) "only poisoned items fail" true
                (i mod 10 = 3)
          | Error e -> raise e)
        rs;
      (* jobs=1 shortcut agrees *)
      Pool.with_pool ~jobs:1 (fun p1 ->
          let ok r = match r with Ok v -> Some v | Error _ -> None in
          Alcotest.(check (list (option int)))
            "sequential agrees with parallel"
            (List.map ok (Pool.map_chunked_result p1 work (List.init 50 Fun.id)))
            (List.map ok rs)))

let determinism =
  prop "any jobs/chunk gives List.map"
    QCheck.(triple (int_range 1 8) (int_range 1 17) (list_of_size Gen.(0 -- 50) int))
    (fun (jobs, chunk, xs) ->
      let f x = (x * 31) lxor 0x55 in
      Pool.with_pool ~jobs (fun pool ->
          Pool.map_chunked ~chunk pool f xs = List.map f xs))

let uneven_cost =
  prop ~count:10 "irregular per-element cost balances"
    QCheck.(int_range 2 6)
    (fun jobs ->
      (* quadratic work on a few elements, trivial on the rest *)
      let work x =
        let n = if x mod 17 = 0 then 20_000 else 10 in
        let acc = ref x in
        for i = 1 to n do
          acc := (!acc * 7) lxor i
        done;
        !acc
      in
      let xs = List.init 120 Fun.id in
      Pool.with_pool ~jobs (fun pool ->
          Pool.map_chunked ~chunk:1 pool work xs = List.map work xs))

let () =
  Alcotest.run "par"
    [ ( "pool",
        [ Alcotest.test_case "order preserved" `Quick test_map_preserves_order;
          Alcotest.test_case "empty/singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "fail fast" `Quick test_fail_fast;
          Alcotest.test_case "map_chunked_result" `Quick
            test_map_chunked_result;
          determinism;
          uneven_cost ] ) ]
