(* End-to-end checks of the s4e command-line tool: each case runs a
   subcommand on a generated source file and greps the output.  This
   covers the argument parsing and wiring that the library-level tests
   cannot see. *)

let s4e = Sys.argv.(1)

let failures = ref 0

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let hello_src = {|
  .equ UART, 0x10000000
  .equ EXIT, 0x00100000
_start:
  la   a1, msg
  li   a2, UART
put:
  lbu  a0, 0(a1)
  beqz a0, fin
  sb   a0, 0(a2)
  addi a1, a1, 1
  j    put
fin:
  li   a3, EXIT
  sw   zero, 0(a3)
  ebreak
  .data
msg:
  .asciz "cli-ok"
|}

let loop_src = {|
_start:
  li   a0, 0
  li   a1, 8
again:
  addi a0, a0, 1
  blt  a0, a1, again
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
|}

(* A nested loop doing enough work (~45k instructions) that a rerun
   campaign over a few hundred mutants takes seconds, leaving a window
   to deliver SIGINT mid-run for the kill-and-resume check. *)
let slow_src = {|
_start:
  li   s0, 0
  li   s1, 0
  li   s2, 400
  li   s3, 0x80001000
outer:
  li   t0, 0
  li   t1, 13
inner:
  mul  t2, t0, s1
  add  s0, s0, t2
  xor  s0, s0, t0
  sw   s0, 0(s3)
  lw   t3, 0(s3)
  add  s0, s0, t3
  addi t0, t0, 1
  blt  t0, t1, inner
  addi s1, s1, 1
  blt  s1, s2, outer
  andi a0, s0, 0xff
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
|}

(* Run a command, capture stdout+stderr, return (exit code, output). *)
let run_capture cmd =
  let out = Filename.temp_file "s4e_cli" ".out" in
  let code = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd out) in
  let ic = open_in_bin out in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (code, s)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check name cmd ~expect_code ~expect_substrings =
  let code, out = run_capture cmd in
  let ok =
    code = expect_code && List.for_all (contains out) expect_substrings
  in
  if ok then Printf.printf "  [OK]   %s\n" name
  else begin
    incr failures;
    Printf.printf "  [FAIL] %s\n    cmd: %s\n    exit %d (wanted %d)\n" name
      cmd code expect_code;
    List.iter
      (fun sub ->
        if not (contains out sub) then
          Printf.printf "    missing substring %S\n" sub)
      expect_substrings;
    print_string out
  end

let () =
  let dir = Filename.temp_file "s4e_cli" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let hello = Filename.concat dir "hello.s" in
  let loop = Filename.concat dir "loop.s" in
  let image = Filename.concat dir "hello.bin" in
  let qta = Filename.concat dir "hello.qta" in
  let bad = Filename.concat dir "bad.s" in
  let slow = Filename.concat dir "slow.s" in
  write_file hello hello_src;
  write_file loop loop_src;
  write_file bad "_start:\n  frobnicate a0\n";
  write_file slow slow_src;
  Printf.printf "cli tests (%s):\n" s4e;

  check "run prints the UART output"
    (Printf.sprintf "%s run %s" s4e hello)
    ~expect_code:0
    ~expect_substrings:[ "cli-ok"; "exited with code 0" ];
  check "run --trace prints a tail"
    (Printf.sprintf "%s run %s --trace 3" s4e hello)
    ~expect_code:0
    ~expect_substrings:[ "trace tail:"; "branches:" ];
  check "assembly errors carry line numbers"
    (Printf.sprintf "%s run %s" s4e bad)
    ~expect_code:1
    ~expect_substrings:[ "line 2"; "unknown mnemonic" ];
  check "dis shows decoded instructions"
    (Printf.sprintf "%s dis %s" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "addi a0, zero, 0"; "blt a0, a1, -4" ];
  check "asm writes an image"
    (Printf.sprintf "%s asm %s -o %s" s4e hello image)
    ~expect_code:0
    ~expect_substrings:[ "wrote" ];
  check "run accepts the image"
    (Printf.sprintf "%s run %s" s4e image)
    ~expect_code:0
    ~expect_substrings:[ "cli-ok" ];
  check "cfg reconstructs blocks"
    (Printf.sprintf "%s cfg %s" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "function @ 0x80000000"; "block 0" ];
  check "stats reports the minimal ISA"
    (Printf.sprintf "%s stats %s" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "minimal ISA: RV32I" ];
  check "wcet analyzes the counted loop"
    (Printf.sprintf "%s wcet %s" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "program WCET:"; "bound=9 (inferred)" ];
  check "wcet --cosim prints the chain"
    (Printf.sprintf "%s wcet %s --cosim" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "co-simulation: dynamic=" ];
  check "wcet rejects data-dependent loops"
    (Printf.sprintf "%s wcet %s" s4e hello)
    ~expect_code:1
    ~expect_substrings:[ "no inferable bound" ];
  check "wcet accepts annotations"
    (Printf.sprintf "%s wcet %s -a put=7" s4e hello)
    ~expect_code:0
    ~expect_substrings:[ "bound=7 (annotated)" ];
  check "qta-export emits the interchange format"
    (Printf.sprintf "%s qta-export %s -o %s && head -1 %s" s4e loop qta qta)
    ~expect_code:0
    ~expect_substrings:[ "qta-cfg v1" ];
  check "fault campaign summarizes"
    (Printf.sprintf "%s fault %s -n 25 --fuel 100000" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "total=25" ];
  check "mutate scores a test set"
    (Printf.sprintf "%s mutate %s --fuel 100000" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "mutation score" ];
  check "run --cache-stats reports hit rates"
    (Printf.sprintf "%s run %s --cache-stats" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "icache:"; "dcache:" ];
  check "torture runs deterministically"
    (Printf.sprintf "%s torture --seed 12" s4e)
    ~expect_code:0
    ~expect_substrings:[ "torture seed=12: exited with code" ];
  check "run --profile ranks the hot loop"
    (Printf.sprintf "%s run %s --profile" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "hot blocks (by cycles):"; "again" ];
  check "run --metrics - dumps the registry"
    (Printf.sprintf "%s run %s --metrics -" s4e loop)
    ~expect_code:0
    ~expect_substrings:
      [ "\"machine.instret\""; "\"machine.tb.blocks\"" ];
  check "run --cache-stats labels chain hits"
    (Printf.sprintf "%s run %s --cache-stats" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "chain hits"; "invalidations" ];
  check "run --cache-stats reports the memory TLB"
    (Printf.sprintf "%s run %s --cache-stats" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "mem tlb:"; "flushes" ];
  check "run --no-mem-tlb matches the default output"
    (Printf.sprintf
       "{ a=$(%s run %s); b=$(%s run %s --no-mem-tlb); [ \"$a\" = \"$b\" ] \
        && echo TLB-OUTPUT-MATCH; }"
       s4e hello s4e hello)
    ~expect_code:0
    ~expect_substrings:[ "TLB-OUTPUT-MATCH" ];
  check "run --no-mem-tlb --cache-stats shows a cold TLB"
    (Printf.sprintf "%s run %s --no-mem-tlb --cache-stats" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "mem tlb: 0 hits" ];
  check "run --metrics includes TLB gauges"
    (Printf.sprintf "%s run %s --metrics -" s4e loop)
    ~expect_code:0
    ~expect_substrings:
      [ "\"machine.mem.tlb_hits\""; "\"machine.mem.tlb_flushes\"" ];
  check "torture --no-mem-tlb agrees with the default"
    (Printf.sprintf
       "{ a=$(%s torture --seed 3 --count 4); b=$(%s torture --seed 3 \
        --count 4 --no-mem-tlb); [ \"$a\" = \"$b\" ] && echo \
        TORTURE-TLB-MATCH; }"
       s4e s4e)
    ~expect_code:0
    ~expect_substrings:[ "TORTURE-TLB-MATCH" ];
  check "profile subcommand prints the ranked report"
    (Printf.sprintf "%s profile %s" s4e loop)
    ~expect_code:0
    ~expect_substrings:
      [ "hot blocks (by cycles):"; "hot functions:"; "again" ];
  check "profile --disas disassembles the hottest block"
    (Printf.sprintf "%s profile %s --disas" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "hottest block"; "addi a0, a0, 1" ];
  (let trace = Filename.concat dir "trace.json" in
   check "fault --trace-events writes a trace"
     (Printf.sprintf
        "{ %s fault %s -n 25 --fuel 100000 --trace-events %s && head -2 \
         %s; }"
        s4e loop trace trace)
     ~expect_code:0
     ~expect_substrings:[ "trace events"; "\"ph\"" ]);
  check "fault --metrics - reports campaign counters"
    (Printf.sprintf "%s fault %s -n 25 --fuel 100000 --metrics -" s4e loop)
    ~expect_code:0
    ~expect_substrings:[ "\"campaign.mutants\": 25"; "\"campaign.hangs\"" ];
  (let j = Filename.concat dir "campaign.jsonl" in
   check "fault --journal records every outcome"
     (Printf.sprintf
        "{ %s fault %s -n 25 --fuel 100000 --journal %s && head -1 %s; }" s4e
        loop j j)
     ~expect_code:0
     ~expect_substrings:[ "total=25"; "\"s4e_journal\":1"; "\"total\":25" ];
   check "fault --resume skips already-classified mutants"
     (Printf.sprintf "%s fault %s -n 25 --fuel 100000 --resume %s" s4e loop j)
     ~expect_code:0
     ~expect_substrings:
       [ "total=25"; "resumed: 25 mutants already classified" ];
   check "fault --resume rejects a mismatched campaign"
     (Printf.sprintf "%s fault %s -n 25 --fuel 100000 --seed 9 --resume %s"
        s4e loop j)
     ~expect_code:1
     ~expect_substrings:[ "fault:" ]);
  (let s0 = Filename.concat dir "shard0.jsonl" in
   let s1 = Filename.concat dir "shard1.jsonl" in
   let merged = Filename.concat dir "merged.jsonl" in
   check "fault --shard runs a deterministic slice"
     (Printf.sprintf
        "%s fault %s -n 25 --fuel 100000 --shard 0/2 --journal %s" s4e loop
        s0)
     ~expect_code:0
     ~expect_substrings:[ "total=13" ];
   check "merge-journals flags an incomplete campaign"
     (Printf.sprintf "%s merge-journals %s" s4e s0)
     ~expect_code:1
     ~expect_substrings:[ "incomplete campaign: 13/25" ];
   check "merge-journals combines complementary shards"
     (Printf.sprintf
        "{ %s fault %s -n 25 --fuel 100000 --shard 1/2 --journal %s && %s \
         merge-journals %s %s -o %s && head -1 %s; }"
        s4e loop s1 s4e s0 s1 merged merged)
     ~expect_code:0
     ~expect_substrings:[ "total=25"; "\"s4e_journal\":1" ];
   check "merge-journals --json emits the machine summary"
     (Printf.sprintf "%s merge-journals %s %s --json" s4e s0 s1)
     ~expect_code:0
     ~expect_substrings:
       [ "\"s4e_merge_schema\":1"; "\"records\":25"; "\"expected\":25";
         "\"complete\":true"; "\"summary\":{\"masked\":" ];
   check "merge-journals --json reports incompleteness in the exit code"
     (Printf.sprintf "%s merge-journals %s --json" s4e s0)
     ~expect_code:1
     ~expect_substrings:[ "\"complete\":false"; "\"records\":13" ]);
  (let j = Filename.concat dir "killed.jsonl" in
   let part = Filename.concat dir "killed.out" in
   let args =
     Printf.sprintf "fault %s -n 400 --fuel 200000 --rerun -j 2" slow
   in
   (* Interrupt a campaign mid-run, then resume it from the journal and
      compare the final summary against an uninterrupted reference. *)
   check "SIGINT journals progress and --resume completes it"
     (Printf.sprintf
        "{ ref=$(%s %s | head -1); %s %s --journal %s > %s 2>&1 & pid=$!; \
         sleep 0.7; kill -INT $pid 2>/dev/null; wait $pid; echo exit=$?; \
         grep interrupted %s; res=$(%s %s --resume %s | head -1); [ \
         \"$ref\" = \"$res\" ] && echo SUMMARIES-MATCH; }"
        s4e args s4e args j part part s4e args j)
     ~expect_code:0
     ~expect_substrings:[ "exit=130"; "interrupted:"; "SUMMARIES-MATCH" ]);
  (let j = Filename.concat dir "termed.jsonl" in
   let part = Filename.concat dir "termed.out" in
   let args =
     Printf.sprintf "fault %s -n 400 --fuel 200000 --rerun -j 2" slow
   in
   (* Same shape with SIGTERM: supervisors (and the fleet) stop
      campaigns with TERM, which must journal and exit 143. *)
   check "SIGTERM journals progress (exit 143) and --resume completes it"
     (Printf.sprintf
        "{ ref=$(%s %s | head -1); %s %s --journal %s > %s 2>&1 & pid=$!; \
         sleep 0.7; kill -TERM $pid 2>/dev/null; wait $pid; echo exit=$?; \
         grep interrupted %s; res=$(%s %s --resume %s | head -1); [ \
         \"$ref\" = \"$res\" ] && echo SUMMARIES-MATCH; }"
        s4e args s4e args j part part s4e args j)
     ~expect_code:0
     ~expect_substrings:[ "exit=143"; "interrupted:"; "SUMMARIES-MATCH" ]);
  (let sock = Filename.concat dir "fleet.sock" in
   let jd = Filename.concat dir "fleet-journals" in
   let sub = Filename.concat dir "submit.out" in
   let args = "-n 120 --fuel 200000 --rerun" in
   (* The fleet path end to end on a unix socket: orchestrator, one
      draining worker, a 3-shard submission - the merged summary must
      be byte-equal to the single-process campaign and the merged
      journal must read back complete. *)
   check "fleet serve/worker/submit matches the single-process campaign"
     (Printf.sprintf
        "{ ref=$(%s fault %s %s -j 1 | head -1); %s serve --listen unix:%s \
         --journal-dir %s --lease-ttl 10 -q & spid=$!; sleep 0.5; %s submit \
         %s --connect unix:%s %s --shards 3 --wait > %s 2>&1 & wpid=$!; \
         sleep 0.3; %s worker --connect unix:%s -j 1 --drain -q; wait \
         $wpid; echo submit=$?; kill -TERM $spid; wait $spid; echo \
         serve=$?; res=$(head -1 %s); [ \"$ref\" = \"$res\" ] && echo \
         FLEET-SUMMARY-MATCH; %s merge-journals %s/j1.jsonl --json; }"
        s4e slow args s4e sock jd s4e slow sock args sub s4e sock sub s4e jd)
     ~expect_code:0
     ~expect_substrings:
       [ "submit=0"; "serve=0"; "FLEET-SUMMARY-MATCH"; "\"complete\":true" ]);

  if !failures > 0 then begin
    Printf.printf "%d CLI test(s) failed\n" !failures;
    exit 1
  end
  else print_endline "all CLI tests passed"
